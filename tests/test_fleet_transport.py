"""Shared-memory result transport, WAL spooling, pinning (PR 7).

Covers the struct-packed accumulator transport (pack/unpack identity,
header rejection, shm-vs-pickle byte-identity across the backend ×
workers × chunk grid, slab cleanup on worker crash), worker-local WAL
spooling (merge determinism, indexed loads, verified replay equality,
durable-fleet JSON byte-identity), the CPU-affinity knobs and the
workers-exceed-chunks clamp.
"""

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from repro.fleet import FleetConfig, FleetEngine, run_fleet
from repro.fleet import shm
from repro.fleet.affinity import available_cpus, claim_slot, pin_to_slot
from repro.fleet.pool import POOLS, SerialPool
from repro.fleet.spool import (SpoolWriter, load_spooled_home,
                               merge_spool, replay_spooled_home)
from repro.metrics.fleet import FleetAccumulator


def make_accumulator(rows):
    accumulator = FleetAccumulator()
    for row in rows:
        accumulator.add_row(row)
    return accumulator


def sample_row(home_id=0, latencies=(0.001, 0.02, 1.5)):
    return {"home_id": home_id, "routines": 3, "committed": 2,
            "aborted": 1, "latencies": list(latencies),
            "final_congruent": True, "temporary_incongruence": 0.25,
            "makespan": 2.5}


# -- struct-packed pack/unpack identity ---------------------------------------


class TestPackUnpackIdentity:
    def assert_roundtrip(self, accumulator):
        rebuilt = shm.unpack_accumulator(
            shm.pack_accumulator(accumulator))
        assert rebuilt.state() == accumulator.state()
        assert rebuilt.aggregate() == accumulator.aggregate()

    def test_empty_accumulator(self):
        self.assert_roundtrip(FleetAccumulator())

    def test_single_bin(self):
        self.assert_roundtrip(
            make_accumulator([sample_row(latencies=[0.0004] * 5)]))

    def test_saturating_tail_counts(self):
        # Large counts piled into few bins plus a huge outlier bin:
        # int64 pairs must carry them exactly.
        accumulator = make_accumulator(
            [sample_row(home_id=i) for i in range(7)])
        accumulator.histogram.bins[10 ** 9] = 2 ** 40
        accumulator.histogram.count += 2 ** 40
        self.assert_roundtrip(accumulator)

    def test_packed_size_matches(self):
        accumulator = make_accumulator([sample_row()])
        assert len(shm.pack_accumulator(accumulator)) == \
            shm.packed_size(accumulator)

    def test_pickle_fallback_region_overflow(self):
        # A region smaller than the packed partial: the worker-side
        # helper refuses (returns None) instead of truncating.
        accumulator = make_accumulator([sample_row()])
        assert shm.pack_partial_to_region(
            accumulator, chunk_id=0, slab_names=("whatever",),
            region_bytes=8) is None


class TestHeaderRejection:
    def packed(self):
        return shm.pack_accumulator(make_accumulator([sample_row()]))

    def test_bad_magic(self):
        buffer = b"XXXX" + self.packed()[4:]
        with pytest.raises(shm.TransportError, match="magic"):
            shm.unpack_accumulator(buffer)

    def test_unknown_version(self):
        import struct

        header = struct.pack("=4sHH", shm.MAGIC, shm.VERSION + 1,
                             shm.BYTE_ORDER_MARK)
        with pytest.raises(shm.TransportError, match="version"):
            shm.unpack_accumulator(header + self.packed()[8:])

    def test_foreign_endianness(self):
        import struct

        swapped = struct.unpack(">H",
                                struct.pack("<H",
                                            shm.BYTE_ORDER_MARK))[0]
        header = struct.pack("=4sHH", shm.MAGIC, shm.VERSION, swapped)
        with pytest.raises(shm.TransportError, match="endian"):
            shm.unpack_accumulator(header + self.packed()[8:])

    def test_truncated_buffer(self):
        with pytest.raises(shm.TransportError, match="shorter"):
            shm.unpack_accumulator(self.packed()[:10])

    def test_declared_length_mismatch(self):
        with pytest.raises(shm.TransportError, match="layout declares"):
            shm.unpack_accumulator(self.packed() + b"\x00" * 16)


# -- transport equivalence over the execution grid ----------------------------


@pytest.mark.skipif(not shm.shm_available(),
                    reason="multiprocessing.shared_memory unavailable")
class TestShmTransportEquivalence:
    HOMES = 8

    def reference(self):
        return run_fleet(self.HOMES, seed=13, scenario="cooling",
                         aggregate="stream", chunk=2,
                         transport="pickle").to_json(per_home=True)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk", [1, 2, HOMES])
    def test_shm_matches_pickle_bytes(self, backend, workers, chunk):
        pickled = run_fleet(self.HOMES, seed=13, scenario="cooling",
                            backend=backend, workers=workers,
                            chunk=chunk, aggregate="stream",
                            transport="pickle").to_json(per_home=True)
        packed = run_fleet(self.HOMES, seed=13, scenario="cooling",
                           backend=backend, workers=workers,
                           chunk=chunk, aggregate="stream",
                           transport="shm").to_json(per_home=True)
        assert packed == pickled
        # Chunk layout (not transport) is the reproducibility knob:
        # the fixed-chunk reference matches too.
        if chunk == 2:
            assert packed == self.reference()

    def test_transport_not_stamped_into_json(self):
        payload = json.loads(run_fleet(
            4, seed=3, aggregate="stream", chunk=2,
            transport="shm").to_json())
        assert "transport" not in payload["fleet"]

    def test_shm_requires_stream_aggregate(self):
        with pytest.raises(ValueError, match="stream"):
            FleetEngine(FleetConfig(homes=2, transport="shm"))

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            FleetEngine(FleetConfig(homes=2, transport="carrier-pigeon"))


@pytest.mark.skipif(not shm.shm_available(),
                    reason="multiprocessing.shared_memory unavailable")
class TestSlabLifecycle:
    def test_region_layout_is_disjoint(self):
        seen = set()
        for chunk_id in range(12):
            slab, offset = shm.region_for_chunk(chunk_id, slabs=3,
                                                region_bytes=256)
            assert (slab, offset) not in seen
            seen.add((slab, offset))
        assert {slab for slab, _ in seen} == {0, 1, 2}

    def test_slabs_unlink_on_close(self):
        from multiprocessing.shared_memory import SharedMemory

        slabs = shm.SlabSet(slabs=2, chunks=5, region_bytes=128)
        names = slabs.names
        assert len(names) == 2
        slabs.close(unlink=True)
        slabs.close(unlink=True)        # idempotent
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_no_leak_when_worker_crashes(self, monkeypatch):
        """Slabs are unlinked by the engine's finally even when a chunk
        dies mid-run — no /dev/shm entry survives the failure."""
        from multiprocessing.shared_memory import SharedMemory

        import repro.fleet.pool as pool_mod

        created = []
        original_init = shm.SlabSet.__init__

        def spying_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            created.extend(self.names)

        monkeypatch.setattr(shm.SlabSet, "__init__", spying_init)

        def doomed_chunk(context, chunk_id, chunk, factory):
            raise RuntimeError("worker died mid-chunk")

        monkeypatch.setattr(pool_mod, "process_chunk", doomed_chunk)
        with pytest.raises(RuntimeError, match="died"):
            FleetEngine(FleetConfig(
                homes=4, seed=1, aggregate="stream",
                transport="shm")).run()
        assert created, "SlabSet was never constructed"
        for name in created:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)


# -- worker-local WAL spooling -------------------------------------------------


class TestWalSpooling:
    CONFIG = dict(homes=4, seed=7, scenario="cooling", crashes=1)

    def run_spooled(self, tmp_path, name, **overrides):
        wal_dir = str(tmp_path / name)
        config = dict(self.CONFIG, wal_dir=wal_dir, **overrides)
        result = FleetEngine(FleetConfig(**config)).run()
        return result, wal_dir

    def test_durable_fleet_json_identical_with_and_without_spool(
            self, tmp_path):
        plain = FleetEngine(FleetConfig(**self.CONFIG)).run()
        spooled, _ = self.run_spooled(tmp_path, "wal")
        assert spooled.to_json(per_home=True) == \
            plain.to_json(per_home=True)

    def test_nondurable_fleet_json_unchanged_by_spooling(self, tmp_path):
        plain = run_fleet(4, seed=7, scenario="cooling")
        spooled, _ = self.run_spooled(tmp_path, "wal", crashes=0)
        assert spooled.to_json(per_home=True) == \
            plain.to_json(per_home=True)

    def test_merged_log_is_backend_and_layout_invariant(self, tmp_path):
        _, reference_dir = self.run_spooled(tmp_path, "serial")
        reference = (
            (tmp_path / "serial" / "fleet-wal.jsonl").read_bytes(),
            (tmp_path / "serial" / "fleet-wal-index.json").read_bytes())
        for name, overrides in (
                ("thread", dict(backend="thread", workers=4, chunk=1)),
                ("process", dict(backend="process", workers=2, chunk=2))):
            self.run_spooled(tmp_path, name, **overrides)
            assert (tmp_path / name /
                    "fleet-wal.jsonl").read_bytes() == reference[0]
            assert (tmp_path / name /
                    "fleet-wal-index.json").read_bytes() == reference[1]

    def test_segments_are_merged_away(self, tmp_path):
        _, wal_dir = self.run_spooled(tmp_path, "wal",
                                      backend="process", workers=2)
        entries = sorted(os.listdir(wal_dir))
        assert entries == ["fleet-wal-index.json", "fleet-wal.jsonl"]

    def test_indexed_load_and_verified_replay(self, tmp_path):
        result, wal_dir = self.run_spooled(tmp_path, "wal",
                                           backend="process", workers=2)
        for row in result.rows:
            record = load_spooled_home(wal_dir, row["home_id"])
            assert record["home_id"] == row["home_id"]
            assert record["scenario"] == row["scenario"]
            assert record["seed"] == row["seed"]
            home = replay_spooled_home(record)
            report = home.report(check_final=True)
            assert report.routines == row["routines"]
            assert report.committed == row["committed"]
            assert report.aborted == row["aborted"]
            assert report.final_congruent == row["final_congruent"]
            assert home._last_result.makespan == row["makespan"]

    def test_load_unknown_home_raises(self, tmp_path):
        _, wal_dir = self.run_spooled(tmp_path, "wal")
        with pytest.raises(KeyError):
            load_spooled_home(wal_dir, 999)

    def test_merge_rejects_duplicate_home_ids(self, tmp_path):
        wal_dir = str(tmp_path / "dup")
        os.makedirs(wal_dir)
        writer = SpoolWriter(wal_dir)
        writer.write({"home_id": 0, "wal": []})
        writer.write({"home_id": 0, "wal": []})
        writer.close()
        with pytest.raises(ValueError, match="duplicate"):
            merge_spool(wal_dir)

    def test_merge_rejects_missing_homes(self, tmp_path):
        wal_dir = str(tmp_path / "short")
        os.makedirs(wal_dir)
        writer = SpoolWriter(wal_dir)
        writer.write({"home_id": 0, "wal": []})
        writer.close()
        with pytest.raises(ValueError, match="cover 1 homes"):
            merge_spool(wal_dir, expected_homes=2)


# -- CPU affinity --------------------------------------------------------------


class TestAffinity:
    def test_available_cpus_positive(self):
        assert available_cpus() >= 1

    def test_claim_slots_are_unique_and_exhaustible(self, tmp_path):
        claim_dir = str(tmp_path)
        slots = [claim_slot(claim_dir, 3) for _ in range(4)]
        assert slots == [0, 1, 2, None]

    def test_pin_none_is_noop(self):
        assert pin_to_slot(0, mode="none") is None
        assert pin_to_slot(None, mode="spread") is None

    def test_pin_spread_stays_within_allowed_cpus(self):
        cpu = pin_to_slot(0, mode="spread")
        if cpu is None:
            pytest.skip("sched_setaffinity unavailable or denied")
        try:
            assert cpu in os.sched_getaffinity(0)
            # Slot beyond the CPU count wraps round-robin.
            assert pin_to_slot(available_cpus(),
                               mode="spread") is not None
        finally:
            os.sched_setaffinity(0, range(os.cpu_count() or 1))

    def test_engine_rejects_unknown_pin_mode(self):
        with pytest.raises(ValueError, match="pin"):
            FleetEngine(FleetConfig(homes=2, pin="sideways"))

    def test_pinned_fleet_output_matches_unpinned(self):
        plain = run_fleet(4, seed=5, backend="process",
                          workers=2).to_json(per_home=True)
        pinned = run_fleet(4, seed=5, backend="process", workers=2,
                           pin="spread").to_json(per_home=True)
        assert pinned == plain


# -- workers > chunks clamp ----------------------------------------------------


class TestWorkerClamp:
    def test_pool_never_gets_more_workers_than_chunks(self, monkeypatch):
        seen = {}

        class RecordingPool(SerialPool):
            def __init__(self, workers):
                super().__init__(workers)
                seen["workers"] = workers

        monkeypatch.setitem(POOLS, "serial", RecordingPool)
        result = FleetEngine(FleetConfig(homes=3, workers=8)).run()
        assert len(result.rows) == 3
        # 3 homes → ceil(3/3)=1-home chunks at most 3 chunks; the pool
        # must not be built wider than the chunk plan.
        assert seen["workers"] <= 3

    def test_more_workers_than_homes_still_correct(self):
        reference = run_fleet(3, seed=2).to_json(per_home=True)
        for backend in ("serial", "thread", "process"):
            wide = run_fleet(3, seed=2, backend=backend,
                             workers=8).to_json(per_home=True)
            assert wide == reference, backend

    def test_empty_chunks_never_planned(self):
        from repro.fleet import plan_chunks

        for chunk_size in (1, 2, 3, 5, 99):
            chunks = plan_chunks([(i, "cooling", i) for i in range(5)],
                                 chunk_size)
            assert all(chunks), chunks


# -- scaling gate script -------------------------------------------------------


class TestGateScaling:
    def write_summary(self, tmp_path, cores, efficiency):
        rows = [
            {"workers": 1, "wall_s": 1.0, "homes_per_sec": 96.0,
             "speedup": 1.0, "efficiency_raw": 1.0, "efficiency": 1.0},
            {"workers": 4, "wall_s": 0.5, "homes_per_sec": 192.0,
             "speedup": 2.0, "efficiency_raw": 0.5,
             "efficiency": efficiency},
        ]
        summary = {"results": [{"name": "fleet_scale_mp",
                                "timing": {"cores": cores,
                                           "transport": "shm",
                                           "scaling": rows}}]}
        path = tmp_path / "scale.json"
        path.write_text(json.dumps(summary))
        return str(path)

    def test_gate_passes_above_floor(self, tmp_path, capsys):
        import gate_scaling

        summary = self.write_summary(tmp_path, cores=4, efficiency=0.9)
        assert gate_scaling.main([summary, "--baseline",
                                  str(tmp_path / "missing.json")]) == 0
        assert "OK" in capsys.readouterr().out

    def test_gate_fails_below_floor_on_big_machine(self, tmp_path,
                                                   capsys):
        import gate_scaling

        summary = self.write_summary(tmp_path, cores=4, efficiency=0.5)
        assert gate_scaling.main([summary, "--baseline",
                                  str(tmp_path / "missing.json")]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_gate_only_warns_below_four_cores(self, tmp_path, capsys):
        import gate_scaling

        summary = self.write_summary(tmp_path, cores=1, efficiency=0.5)
        assert gate_scaling.main([summary, "--baseline",
                                  str(tmp_path / "missing.json")]) == 0
        assert "WARN" in capsys.readouterr().err

    def test_update_baseline_preserves_other_tables(self, tmp_path):
        import gate_scaling

        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(
            {"schema": "x", "benchmarks": {"keep": {"floor": 1}},
             "hotpath_pass": {"keep": True}}))
        summary = self.write_summary(tmp_path, cores=4, efficiency=0.9)
        assert gate_scaling.main(
            [summary, "--baseline", str(baseline_path),
             "--update-baseline"]) == 0
        rewritten = json.loads(baseline_path.read_text())
        assert rewritten["benchmarks"] == {"keep": {"floor": 1}}
        assert rewritten["hotpath_pass"] == {"keep": True}
        assert rewritten["scaling_mp"]["cores"] == 4
        assert rewritten["scaling_mp"]["rows"][-1]["efficiency"] == 0.9

    def test_markdown_delta_written(self, tmp_path):
        import gate_scaling

        summary = self.write_summary(tmp_path, cores=4, efficiency=0.9)
        markdown = tmp_path / "delta.md"
        assert gate_scaling.main(
            [summary, "--baseline", str(tmp_path / "missing.json"),
             "--markdown", str(markdown)]) == 0
        text = markdown.read_text()
        assert "| workers |" in text
        assert "| 4 |" in text


# -- CLI knobs -----------------------------------------------------------------


class TestCliKnobs:
    def test_workers_auto(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--homes", "2", "--workers", "auto"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"]["homes"] == 2

    def test_workers_junk_rejected(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--homes", "2", "--workers", "many"]) == 2
        assert "auto" in capsys.readouterr().err

    @pytest.mark.skipif(not shm.shm_available(),
                        reason="shared_memory unavailable")
    def test_transport_shm_needs_stream(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--homes", "2",
                     "--transport", "shm"]) == 2
        assert "stream" in capsys.readouterr().err

    def test_wal_dir_flag_spools(self, tmp_path, capsys):
        from repro.cli import main

        wal_dir = str(tmp_path / "wal")
        assert main(["fleet", "--homes", "2", "--crashes", "1",
                     "--wal-dir", wal_dir]) == 0
        assert sorted(os.listdir(wal_dir)) == \
            ["fleet-wal-index.json", "fleet-wal.jsonl"]
