"""On-disk segmented WAL: frame format, scanner classification, the
staging swap, and byte-identity between disk and memory logs."""

import json
import os

import pytest

from repro.errors import CorruptionError, SafeHomeError
from repro.hub.durability.storage import (FRAME, KIND_RECORD, MAGIC,
                                          SegmentedWalWriter, canonical_json,
                                          encode_frame, list_segments,
                                          scan_wal_dir, segment_name)
from repro.hub.durability.wal import WalRecord
from repro.hub.safehome import SafeHome


def make_records(count, start=0):
    return [WalRecord(seq=start + i, type="device-added",
                      payload={"type": "light", "name": f"l{i}"},
                      time=float(i))
            for i in range(count)]


def write_log(wal_dir, count=6, seal_every=3, final=True, **kwargs):
    writer = SegmentedWalWriter(wal_dir, home="test:0", **kwargs)
    for record in make_records(count):
        writer.append(record)
        if seal_every and (record.seq + 1) % seal_every == 0:
            writer.seal(seq=record.seq + 1, digest=f"d{record.seq}",
                        events=record.seq + 1, time=record.time,
                        index=(record.seq + 1) // seal_every - 1)
    writer.close(seal_events=count, seal_time=float(count),
                 write_final_seal=final)
    return writer


def build_durable(tmp_path, model="ev", execution=None, seed=3,
                  checkpoint_every=8, close=True):
    from repro.hub.durability import DurabilityConfig

    wal_dir = str(tmp_path / "wal")
    home = SafeHome(visibility=model, execution=execution, seed=seed,
                    durability=DurabilityConfig(
                        checkpoint_every=checkpoint_every),
                    wal_dir=wal_dir)
    home.add_device("window", "w")
    home.add_device("ac", "a")
    home.add_device("light", "l")
    home.register_routine_spec({"routineName": "cool", "commands": [
        {"device": "w", "action": "CLOSED", "durationSec": 2},
        {"device": "a", "action": "ON", "durationSec": 3}]})
    home.invoke("cool")
    home.run()
    if close:
        home.close_wal()
    return home, wal_dir


class TestWriterScanner:
    def test_round_trip_clean_close(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=6, seal_every=3)
        scan = scan_wal_dir(wal_dir)
        assert scan.status == "clean"
        assert scan.clean_close
        assert scan.home == "test:0"
        assert [r.seq for r in scan.records] == list(range(6))
        assert [r.to_dict() for r in scan.records] == \
            [r.to_dict() for r in make_records(6)]
        # 2 checkpoint seals + 1 final close seal.
        assert len(scan.seals) == 3
        assert scan.seals[-1]["final"] is True

    def test_no_final_seal_is_a_crash_image(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=6, seal_every=3, final=False)
        scan = scan_wal_dir(wal_dir)
        assert scan.status == "clean"
        assert not scan.clean_close

    def test_segments_roll_and_chain(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=40, seal_every=10,
                  segment_max_bytes=1024)
        names = list_segments(wal_dir)
        assert len(names) > 1
        assert names[0] == segment_name(0)
        scan = scan_wal_dir(wal_dir)
        assert scan.status == "clean"
        assert [r.seq for r in scan.records] == list(range(40))
        # base_seq chains across segments with no gaps.
        seqs = [seg.base_seq for seg in scan.segments]
        assert seqs == sorted(seqs) and seqs[0] == 0

    def test_refuses_existing_segments(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=2, seal_every=0)
        with pytest.raises(SafeHomeError, match="refusing to overwrite"):
            SegmentedWalWriter(wal_dir)

    def test_empty_dir_scan_raises(self, tmp_path):
        with pytest.raises(SafeHomeError, match="no WAL segments"):
            scan_wal_dir(str(tmp_path))

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / segment_name(0)
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 64)
        scan = scan_wal_dir(str(tmp_path), strict=False)
        # Single segment, so bad magic reads as a torn tail at offset 0
        # unless a coherent frame follows — none does here.
        assert scan.status == "truncated"
        assert scan.truncated["reason"] == "bad or partial segment magic"


class TestClassification:
    def test_torn_tail_truncates_silently(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=6, seal_every=3, final=False)
        path = os.path.join(wal_dir, segment_name(0))
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:-7])  # tear the last frame mid-payload
        scan = scan_wal_dir(wal_dir)  # strict: must NOT raise
        assert scan.status == "truncated"
        assert scan.truncated["reason"] == "frame payload torn at end of log"
        # The torn frame was the trailing seal; every record survives.
        assert [r.seq for r in scan.records] == list(range(6))
        assert len(scan.seals) == 1

    def test_mid_log_bit_flip_raises_with_context(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=6, seal_every=0)
        path = os.path.join(wal_dir, segment_name(0))
        data = bytearray(open(path, "rb").read())
        # Flip a payload bit in the second record frame: find it by
        # walking frames (magic + header frame + first record).
        offset = len(MAGIC)
        for _ in range(2):  # skip header + record 0
            length, _crc, _kind = FRAME.unpack_from(data, offset)
            offset += FRAME.size + length
        data[offset + FRAME.size + 4] ^= 0x10
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CorruptionError) as excinfo:
            scan_wal_dir(wal_dir)
        error = excinfo.value
        assert error.seq == 1
        assert error.offset == offset
        # The satellite contract: seq, type and offset in the message.
        assert f"seq={error.seq}" in str(error)
        assert f"offset={offset}" in str(error)
        assert "type=record" in str(error)

    def test_mid_log_carve_is_not_a_tail(self, tmp_path):
        # Deleting bytes mid-log leaves coherent frames after the
        # damage; the resync probe must refuse the torn-tail reading.
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=8, seal_every=0)
        path = os.path.join(wal_dir, segment_name(0))
        data = open(path, "rb").read()
        offset = len(MAGIC)
        length, _crc, _kind = FRAME.unpack_from(data, offset)
        offset += FRAME.size + length  # start of record 0's frame
        with open(path, "wb") as handle:
            handle.write(data[:offset + 3] + data[offset + 20:])
        with pytest.raises(CorruptionError, match="coherent frame follows"):
            scan_wal_dir(wal_dir)

    def test_duplicate_frame_breaks_sequence(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=4, seal_every=0, final=False)
        path = os.path.join(wal_dir, segment_name(0))
        data = open(path, "rb").read()
        frame = encode_frame(KIND_RECORD,
                             canonical_json(make_records(1)[0].to_dict()))
        with open(path, "ab") as handle:
            handle.write(frame)  # record seq 0 appended after seq 3
        with pytest.raises(CorruptionError, match="sequence break"):
            scan_wal_dir(wal_dir)

    def test_truncated_non_last_segment_is_corruption(self, tmp_path):
        # A tail chop is only a legal crash image in the LAST segment;
        # the same damage mid-chain must raise, not truncate.
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=40, seal_every=10,
                  segment_max_bytes=1024, final=False)
        names = list_segments(wal_dir)
        assert len(names) >= 2
        first = os.path.join(wal_dir, names[0])
        data = open(first, "rb").read()
        with open(first, "wb") as handle:
            handle.write(data[:-5])
        with pytest.raises(CorruptionError,
                           match="truncated mid-log"):
            scan_wal_dir(wal_dir)

    def test_missing_segment_detected(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=40, seal_every=10,
                  segment_max_bytes=1024)
        names = list_segments(wal_dir)
        assert len(names) >= 3
        os.remove(os.path.join(wal_dir, names[1]))
        with pytest.raises(CorruptionError, match="missing segment"):
            scan_wal_dir(wal_dir)


class TestDurableHomeOnDisk:
    def test_disk_matches_memory_byte_for_byte(self, tmp_path):
        home, wal_dir = build_durable(tmp_path)
        scan = scan_wal_dir(wal_dir)
        assert scan.status == "clean" and scan.clean_close
        disk = [json.dumps(r.to_dict(), sort_keys=True)
                for r in scan.records]
        memory = [json.dumps(r.to_dict(), sort_keys=True)
                  for r in home.wal.records]
        assert disk == memory
        # One seal per captured checkpoint, plus the final close seal.
        assert len(scan.seals) == len(home.durability.checkpoints) + 1

    def test_seal_digests_match_checkpoints(self, tmp_path):
        home, wal_dir = build_durable(tmp_path, checkpoint_every=4)
        scan = scan_wal_dir(wal_dir)
        seals = [s for s in scan.seals if not s["final"]]
        assert len(seals) == len(home.durability.checkpoints)
        for seal, checkpoint in zip(seals, home.durability.checkpoints):
            assert seal["digest"] == checkpoint.digest
            assert seal["seq"] == checkpoint.seq

    def test_wal_dir_forces_durability(self, tmp_path):
        home = SafeHome(visibility="ev", seed=0,
                        wal_dir=str(tmp_path / "w"))
        assert home.durability is not None
        assert home.wal_dir == str(tmp_path / "w")

    def test_recovery_rewrites_log_via_staging(self, tmp_path):
        from repro.hub.durability.storage import STAGING_DIR

        wal_dir = str(tmp_path / "wal")
        home = SafeHome(visibility="ev", seed=3, wal_dir=wal_dir)
        twin = SafeHome(visibility="ev", seed=3, durability=True)
        for h in (home, twin):
            h.add_device("window", "w")
            h.add_device("ac", "a")
            h.register_routine_spec({"routineName": "cool", "commands": [
                {"device": "w", "action": "CLOSED", "durationSec": 2},
                {"device": "a", "action": "ON", "durationSec": 3}]})
            h.invoke("cool")
            h.crash(after_events=5)
            h.run()
            h.recover()
            h.run()
        home.close_wal()
        # The staged swap completed and removed its work directory.
        assert not os.path.isdir(os.path.join(wal_dir, STAGING_DIR))
        scan = scan_wal_dir(wal_dir)
        assert scan.status == "clean" and scan.clean_close
        disk = [json.dumps(r.to_dict(), sort_keys=True)
                for r in scan.records]
        memory = [json.dumps(r.to_dict(), sort_keys=True)
                  for r in twin.wal.records]
        assert disk == memory
        assert json.dumps(home.report().row(), sort_keys=True,
                          default=repr) == \
            json.dumps(twin.report().row(), sort_keys=True, default=repr)

    def test_failed_staging_leaves_live_log(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=4, seal_every=2)
        before = {name: open(os.path.join(wal_dir, name), "rb").read()
                  for name in list_segments(wal_dir)}
        staged = SegmentedWalWriter(wal_dir, home="test:0", staging=True)
        staged.append(make_records(1)[0])
        staged.abort_staging()
        after = {name: open(os.path.join(wal_dir, name), "rb").read()
                 for name in list_segments(wal_dir)}
        assert before == after
        from repro.hub.durability.storage import STAGING_DIR
        assert not os.path.isdir(os.path.join(wal_dir, STAGING_DIR))

    def test_commit_staging_swaps_and_keeps_appending(self, tmp_path):
        wal_dir = str(tmp_path)
        write_log(wal_dir, count=4, seal_every=2)
        staged = SegmentedWalWriter(wal_dir, home="test:1", staging=True)
        for record in make_records(3):
            staged.append(record)
        staged.flush()
        staged.commit_staging()
        staged.append(make_records(1, start=3)[0])
        staged.close(seal_events=4, seal_time=4.0)
        scan = scan_wal_dir(wal_dir)
        assert scan.home == "test:1"
        assert [r.seq for r in scan.records] == [0, 1, 2, 3]
        assert scan.clean_close
