"""Smoke tests for the experiment runner and figure drivers (reduced
trial counts — the benchmarks run the real sweeps)."""

import pytest

from repro.experiments import figures
from repro.experiments.report import format_table
from repro.experiments.runner import (ExperimentSetup, aggregate,
                                      run_workload)
from repro.workloads.micro import MicroParams, generate_microbenchmark
from repro.workloads.scenarios import morning_scenario


class TestRunner:
    def test_open_loop_arrivals(self):
        workload = morning_scenario(seed=1)
        setup = ExperimentSetup(model="ev", check_final=False)
        result, report, _controller = run_workload(workload, setup)
        assert report.routines == 29
        assert report.committed == 29

    def test_closed_loop_streams(self):
        params = MicroParams(routines=12, concurrency=3, devices=6,
                             long_routine_pct=0, short_duration_s=2.0)
        workload = generate_microbenchmark(params, seed=1)
        setup = ExperimentSetup(model="ev", check_final=False)
        result, report, _controller = run_workload(workload, setup)
        assert report.committed == 12
        # Closed loop: at most 3 routines ever run concurrently.
        from repro.metrics.collector import parallelism_samples
        assert max(parallelism_samples(result)) <= 3

    def test_failure_scaling_pass(self):
        params = MicroParams(routines=10, concurrency=2, devices=6,
                             failed_device_pct=50, long_routine_pct=0,
                             short_duration_s=2.0)
        workload = generate_microbenchmark(params, seed=2)
        setup = ExperimentSetup(model="gsv", check_final=False)
        result, report, _controller = run_workload(workload, setup)
        # Failures land inside the measured makespan.
        failure_times = [t for _k, _d, t in result.detection_events]
        assert failure_times
        assert min(failure_times) <= result.makespan

    def test_deterministic_given_seed_and_trial(self):
        params = MicroParams(routines=8, concurrency=2, devices=5,
                             long_routine_pct=0, short_duration_s=2.0)
        def run_once():
            workload = generate_microbenchmark(params, seed=3)
            setup = ExperimentSetup(model="ev", seed=11,
                                    check_final=False)
            result, report, _c = run_workload(workload, setup, trial=4)
            return ([(r.routine_id, r.status.value,
                      round(r.finish_time, 6)) for r in result.runs],
                    result.end_state)
        assert run_once() == run_once()

    def test_aggregate(self):
        params = MicroParams(routines=6, concurrency=2, devices=5,
                             long_routine_pct=0, short_duration_s=1.0)
        setup = ExperimentSetup(model="ev", check_final=False)
        reports = []
        for trial in range(3):
            workload = generate_microbenchmark(params, seed=trial)
            _r, report, _c = run_workload(workload, setup, trial=trial)
            reports.append(report)
        pooled = aggregate(reports)
        assert pooled["trials"] == 3
        assert pooled["lat_p50"] > 0


class TestFigureDrivers:
    def test_fig01(self):
        rows = figures.fig01_weak_visibility(device_counts=(2, 6),
                                             offsets=(0.0,), trials=5)
        assert len(rows) == 2
        small, big = rows
        assert big["incongruent_fraction"] >= \
            small["incongruent_fraction"]

    def test_fig02_matches_paper_units(self):
        rows = {row["model"]: row for row in figures.fig02_example()}
        assert rows["gsv"]["makespan_units"] == pytest.approx(8, abs=0.3)
        assert rows["psv"]["makespan_units"] == pytest.approx(5, abs=0.3)
        assert rows["ev"]["makespan_units"] == pytest.approx(3, abs=0.3)
        assert all(row["final_serializable"] for row in rows.values())

    def test_fig12b_wv_incongruent_ev_congruent(self):
        rows = {row["model"]: row for row in
                figures.fig12b_final_incongruence(runs=8, models=("wv",
                                                                  "ev"))}
        assert rows["ev"]["final_incongruence"] == 0.0
        assert rows["wv"]["final_incongruence"] >= 0.0

    def test_fig14_rows_shape(self):
        rows = figures.fig14_schedulers(trials=1, concurrencies=(2,))
        assert {row["scheduler"] for row in rows} == \
            {"fcfs", "jit", "timeline"}

    def test_fig15d_insertion_under_budget(self):
        rows = figures.fig15d_insertion_time(routine_sizes=(2, 10),
                                             n_routines=12)
        for row in rows:
            # The paper reports ~1 ms on a Raspberry Pi; allow slack on
            # arbitrary CI machines.
            assert row["mean_insert_ms"] < 50.0

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "2.5" in text
