"""Tier-1 tests for the unified benchmark subsystem (src/repro/bench).

Covers the satellite checklist: registry uniqueness, BenchResult JSON
round-trip, baseline comparison pass/fail/tolerance edges, determinism
of reported virtual-time metrics across seeded runs, and the recorded
hot-path speedup gate.
"""

import json
import math
from pathlib import Path

import pytest

from repro.bench import baseline as baseline_mod
from repro.bench import registry, runner, timing
from repro.bench.registry import BenchError, BenchSpec, benchmark
from repro.bench.result import SCHEMA, TIMING_FIELDS, BenchResult

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline.json"


@pytest.fixture
def scratch_registry():
    """Run a test against an empty registry, restoring the real one."""
    saved = dict(registry._REGISTRY)
    registry._REGISTRY.clear()
    try:
        yield registry
    finally:
        registry._REGISTRY.clear()
        registry._REGISTRY.update(saved)


def make_result(name="fake", **overrides):
    payload = dict(
        name=name, suite="smoke", params={"n": 3}, warmup=1, repeats=2,
        wall_s=0.5, wall_s_all=[0.5, 0.6], events=1000,
        events_per_sec=2000.0, homes=10, homes_per_sec=20.0,
        virtual_s=42.0, latency_p50=1.5, latency_p95=9.0,
        metrics={"rows": [{"x": 1}]}, timing={"ms": 3.0})
    payload.update(overrides)
    return BenchResult(**payload)


class TestRegistry:
    def test_register_and_call(self, scratch_registry):
        @benchmark("toy", suite="smoke", n=4)
        def toy(n):
            return {"metrics": {"n_squared": n * n}}

        spec = registry.get("toy")
        assert spec.suite == "smoke"
        assert registry.call("toy")["metrics"]["n_squared"] == 16
        assert registry.call("toy", n=5)["metrics"]["n_squared"] == 25

    def test_duplicate_name_rejected(self, scratch_registry):
        @benchmark("dup")
        def first():
            return {}

        with pytest.raises(BenchError, match="duplicate"):
            @benchmark("dup")
            def second():
                return {}

    def test_unknown_suite_rejected(self, scratch_registry):
        with pytest.raises(BenchError, match="unknown suite"):
            @benchmark("bad", suite="nightly")
            def entry():
                return {}

    def test_non_dict_outcome_rejected(self, scratch_registry):
        @benchmark("bad_outcome")
        def entry():
            return [1, 2, 3]

        with pytest.raises(BenchError, match="expected a dict"):
            registry.call("bad_outcome")

    def test_select_smoke_subset_of_full(self, scratch_registry):
        @benchmark("a", suite="smoke")
        def a():
            return {}

        @benchmark("b", suite="full")
        def b():
            return {}

        assert registry.names("smoke") == ["a"]
        assert registry.names("full") == ["a", "b"]

    def test_select_pattern_filter(self, scratch_registry):
        for name in ("fleet_scale", "fleet_mix", "recovery"):
            registry.register(BenchSpec(name=name, fn=lambda: {}))
        assert [s.name for s in registry.select(pattern="fleet*")] == \
            ["fleet_mix", "fleet_scale"]
        assert [s.name for s in registry.select(pattern="cover")] == \
            ["recovery"]

    def test_builtin_suites_register_all_ported_scripts(self):
        from repro.bench.suites import load_builtin_suites

        load_builtin_suites()
        full = set(registry.names("full"))
        # One registered entry per ported benchmarks/bench_*.py script.
        assert {"weak_visibility", "example_timeline", "scenarios",
                "final_incongruence", "failures", "schedulers",
                "leasing", "stretch", "scheduler_insertion",
                "routine_size", "device_popularity", "long_routines",
                "ablations", "occ_extension", "fleet_scale",
                "fleet_scale_sweep", "parallel_exec", "recovery_replay",
                "recovery_sweep", "sim_dispatch"} <= full
        smoke = set(registry.names("smoke"))
        assert "fleet_scale" in smoke and "sim_dispatch" in smoke
        assert smoke < full

    def test_scale_suite_isolates_multicore_benchmark(self):
        from repro.bench.suites import load_builtin_suites

        load_builtin_suites()
        assert "scale" in registry.SUITES
        assert registry.names("scale") == ["fleet_scale_mp"]
        assert "fleet_scale_mp" not in registry.names("smoke")
        assert "fleet_scale_mp" in registry.names("full")

    def test_fleet_scale_mp_outcome_shape(self):
        from repro.bench.suites import load_builtin_suites

        load_builtin_suites()
        outcome = registry.call("fleet_scale_mp", homes=6,
                                worker_counts=(1, 2), inner_repeats=1)
        assert set(outcome["metrics"]) == \
            {"routines", "committed", "abort_rate"}
        timing_block = outcome["timing"]
        assert timing_block["cores"] >= 1
        assert timing_block["transport"] in ("shm", "pickle")
        rows = timing_block["scaling"]
        assert [row["workers"] for row in rows] == [1, 2]
        assert rows[0]["speedup"] == 1.0
        assert rows[0]["efficiency"] == 1.0
        for row in rows:
            assert row["homes_per_sec"] > 0
            assert {"wall_s", "efficiency_raw", "efficiency"} <= set(row)

    def test_fleet_scale_mp_requires_reference_count(self):
        from repro.bench.suites import load_builtin_suites

        load_builtin_suites()
        with pytest.raises(ValueError, match="start at 1"):
            registry.call("fleet_scale_mp", homes=4, worker_counts=(2, 4),
                          inner_repeats=1)


class TestBenchResult:
    def test_json_round_trip(self):
        result = make_result()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["schema"] == SCHEMA
        restored = BenchResult.from_dict(payload)
        assert restored == result

    def test_deterministic_dict_strips_timing_fields(self):
        result = make_result()
        deterministic = result.deterministic_dict()
        for key in TIMING_FIELDS + ("meta",):
            assert key not in deterministic
        assert deterministic["events"] == 1000
        assert deterministic["virtual_s"] == 42.0
        # Two runs differing only in wall-clock compare equal.
        slower = make_result(wall_s=9.9, wall_s_all=[9.9],
                             events_per_sec=101.0, homes_per_sec=1.0,
                             timing={"ms": 99.0})
        assert slower.deterministic_dict() == deterministic

    def test_row_is_flat_and_rounded(self):
        row = make_result().row()
        assert row["wall_ms"] == 500.0
        assert row["events_per_sec"] == 2000
        assert set(row) == {"name", "suite", "wall_ms", "events",
                            "events_per_sec", "homes_per_sec",
                            "lat_p50", "lat_p95"}


class TestTiming:
    def test_min_of_n_and_event_counting(self, scratch_registry):
        calls = []

        @benchmark("timed", suite="smoke", events=50)
        def timed(events):
            from repro.sim.engine import Simulator

            calls.append(1)
            sim = Simulator()
            for i in range(events):
                sim.call_after(float(i), lambda: None)
            sim.run()
            return {"virtual_s": sim.now, "metrics": {}}

        result = timing.run_benchmark(registry.get("timed"),
                                      warmup=2, repeats=3)
        assert len(calls) == 5                      # 2 warmup + 3 timed
        assert len(result.wall_s_all) == 3
        assert result.wall_s == min(result.wall_s_all)
        assert result.events == 50                  # counter diff
        assert result.events_per_sec == pytest.approx(
            50 / result.wall_s)
        assert result.virtual_s == 49.0

    def test_bad_policy_rejected(self, scratch_registry):
        @benchmark("t")
        def t():
            return {}

        with pytest.raises(BenchError, match="repeats"):
            timing.measure(registry.get("t"), repeats=0)
        with pytest.raises(BenchError, match="warmup"):
            timing.measure(registry.get("t"), warmup=-1)


class TestBaseline:
    def baseline(self, eps=2000.0, hps=None):
        entry = {"events_per_sec": eps}
        if hps is not None:
            entry["homes_per_sec"] = hps
        return {"schema": baseline_mod.BASELINE_SCHEMA,
                "benchmarks": {"fake": entry}}

    def test_pass_within_tolerance(self):
        rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=1600.0)],
            self.baseline(), tolerance=0.25)
        assert ok and rows[0]["status"] == "ok"
        assert rows[0]["floor"] == 1500.0

    def test_fail_below_tolerance(self):
        rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=1400.0)],
            self.baseline(), tolerance=0.25)
        assert not ok
        assert rows[0]["status"] == "regression"

    def test_exact_floor_passes(self):
        rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=1500.0)],
            self.baseline(), tolerance=0.25)
        assert ok

    def test_zero_tolerance_pins_baseline(self):
        _rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=1999.9)],
            self.baseline(), tolerance=0.0)
        assert not ok
        _rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=2000.0)],
            self.baseline(), tolerance=0.0)
        assert ok

    def test_improvement_never_fails(self):
        _rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=1e9)], self.baseline())
        assert ok

    def test_untracked_benchmark_passes(self):
        rows, ok = baseline_mod.compare(
            [make_result(name="new_bench")], self.baseline())
        assert ok and rows[0]["status"] == "untracked"

    def test_unmeasurable_tracked_metric_fails(self):
        rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=None)], self.baseline())
        assert not ok
        assert any(row["status"] == "unmeasured" for row in rows)

    def test_both_metrics_compared(self):
        rows, ok = baseline_mod.compare(
            [make_result(events_per_sec=1900.0, homes_per_sec=10.0)],
            self.baseline(hps=100.0), tolerance=0.25)
        assert not ok
        statuses = {row["metric"]: row["status"] for row in rows}
        assert statuses == {"events_per_sec": "ok",
                            "homes_per_sec": "regression"}

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(BenchError, match="tolerance"):
            baseline_mod.compare([make_result()], self.baseline(),
                                 tolerance=1.5)

    def test_make_baseline_merges_and_keeps_unmeasured_floors(self):
        # A filtered --update-baseline run must not drop the floors of
        # benchmarks that did not run.
        old = {"schema": baseline_mod.BASELINE_SCHEMA,
               "benchmarks": {"other": {"events_per_sec": 7.0}}}
        payload = baseline_mod.make_baseline([make_result()],
                                             merge_into=old)
        assert payload["benchmarks"]["other"] == {"events_per_sec": 7.0}
        assert payload["benchmarks"]["fake"]["events_per_sec"] == 2000.0
        # A re-measured benchmark overwrites its old floor.
        old["benchmarks"]["fake"] = {"events_per_sec": 1.0}
        payload = baseline_mod.make_baseline([make_result()],
                                             merge_into=old)
        assert payload["benchmarks"]["fake"]["events_per_sec"] == 2000.0

    def test_make_baseline_min_events_skips_micro_entries(self):
        micro = make_result(name="micro", events=63)
        payload = baseline_mod.make_baseline([make_result(), micro],
                                             min_events=500)
        assert "fake" in payload["benchmarks"]
        assert "micro" not in payload["benchmarks"]

    def test_checked_in_baseline_skips_noise_dominated_micro_entry(self):
        payload = json.loads(BASELINE_PATH.read_text())
        assert "example_timeline" not in payload["benchmarks"]

    def test_make_baseline_then_compare_round_trips(self):
        results = [make_result(), make_result(name="other",
                                              events_per_sec=None,
                                              homes=None,
                                              homes_per_sec=None)]
        payload = baseline_mod.make_baseline(results)
        assert payload["schema"] == baseline_mod.BASELINE_SCHEMA
        assert "other" not in payload["benchmarks"]   # nothing tracked
        _rows, ok = baseline_mod.compare(results, payload, tolerance=0.1)
        assert ok

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"schema": "other/1"}')
        with pytest.raises(BenchError, match="schema"):
            baseline_mod.load_baseline(str(path))


class TestRunner:
    def test_run_suite_merges_and_gates(self, scratch_registry,
                                        tmp_path, monkeypatch):
        # Isolated registry: stub out the builtin-suite loader.
        monkeypatch.setattr("repro.bench.runner.load_builtin_suites",
                            lambda: None)

        @benchmark("alpha", suite="smoke", n=2)
        def alpha(n):
            return {"metrics": {"n": n}}

        @benchmark("beta", suite="full")
        def beta():
            return {"metrics": {}}

        summary = runner.run_suite(suite="smoke", warmup=0, repeats=1)
        assert summary["ok"] is True
        assert [r["name"] for r in summary["results"]] == ["alpha"]
        assert summary["results"][0]["metrics"] == {"n": 2}
        assert summary["meta"]["python"]

        # Full suite picks up both; overrides reach the entry.
        summary = runner.run_suite(suite="full", warmup=0, repeats=1,
                                   overrides={"alpha": {"n": 7}})
        assert [r["name"] for r in summary["results"]] == \
            ["alpha", "beta"]
        assert summary["results"][0]["metrics"] == {"n": 7}
        assert summary["results"][0]["params"] == {"n": 7}

        # Baseline gating: impossible floor -> summary not ok.
        path = tmp_path / "base.json"
        path.write_text(json.dumps({
            "schema": baseline_mod.BASELINE_SCHEMA,
            "hotpath_pass": {"rows": []},
            "benchmarks": {"alpha": {"events_per_sec": 1e12}}}))
        summary = runner.run_suite(suite="smoke", warmup=0, repeats=1,
                                   baseline_path=str(path))
        assert summary["ok"] is False
        assert summary["baseline"]["rows"][0]["status"] == "unmeasured"
        assert summary["hotpath_pass"] == {"rows": []}

        out = tmp_path / "BENCH_summary.json"
        runner.write_summary(summary, str(out))
        assert json.loads(out.read_text())["schema"] == \
            runner.SUMMARY_SCHEMA

    def test_empty_selection_is_an_error(self, scratch_registry,
                                         monkeypatch):
        monkeypatch.setattr("repro.bench.runner.load_builtin_suites",
                            lambda: None)
        with pytest.raises(BenchError, match="no benchmarks match"):
            runner.run_suite(suite="smoke", pattern="nope")


class TestDeterminism:
    def test_seeded_smoke_runs_report_identical_nontiming_fields(self):
        """Two harness runs agree on every non-timing field.

        Uses shrunken parameters for speed; covers a virtual-time fleet
        benchmark, a figure benchmark and the plan-execution compare.
        """
        overrides = {"fleet_scale": {"homes": 6},
                     "parallel_exec": {"routines": 3, "width": 4}}

        def snapshot():
            summary = runner.run_suite(
                suite="smoke",
                pattern="fleet_scale|example_timeline|parallel_exec",
                warmup=0, repeats=1, overrides=overrides)
            return [result.deterministic_dict()
                    for result in runner.summary_results(summary)]

        first, second = snapshot(), snapshot()
        assert first == second
        # Virtual-time metrics are present and finite (not wall time).
        fleet = next(entry for entry in first
                     if entry["name"] == "fleet_scale")
        assert fleet["virtual_s"] and math.isfinite(fleet["virtual_s"])
        assert fleet["events"] > 0


class TestHotpathPass:
    """The measured before/after table recorded in the seed baseline."""

    def load(self):
        return json.loads(BASELINE_PATH.read_text())

    def test_baseline_schema_and_tracked_smoke_benchmarks(self):
        payload = self.load()
        assert payload["schema"] == baseline_mod.BASELINE_SCHEMA
        assert "fleet_scale" in payload["benchmarks"]
        assert payload["benchmarks"]["fleet_scale"]["events_per_sec"] > 0

    def test_recorded_fleet_scale_speedup_is_at_least_1_3x(self):
        hotpath = self.load()["hotpath_pass"]
        assert hotpath["fleet_scale_speedup"] >= 1.3
        by_name = {row["name"]: row for row in hotpath["rows"]}
        fleet = by_name["fleet_scale"]
        assert fleet["after_events_per_sec"] >= \
            1.3 * fleet["before_events_per_sec"]
        assert fleet["speedup"] == pytest.approx(
            fleet["after_events_per_sec"]
            / fleet["before_events_per_sec"], rel=1e-3)
        # The raw dispatch loop gained even more than the fleet path.
        assert by_name["sim_dispatch"]["speedup"] >= 1.3


class TestDispatchUnification:
    """run() and step() share _dispatch, so their traces cannot drift."""

    def build(self, n=20):
        from repro.sim.engine import Simulator

        sim = Simulator()
        trace = []
        for i in range(n):
            sim.call_after(i * 0.5, trace.append, (i, "t"))
        # One cancelled event exercises the lazy-cancellation path.
        doomed = sim.call_after(2.25, trace.append, ("doomed",))
        sim.cancel(doomed)
        return sim, trace

    def test_step_equals_run_trace(self):
        sim_run, trace_run = self.build()
        hooks_run = []
        sim_run.add_post_event_hook(lambda: hooks_run.append(
            sim_run.events_processed))
        sim_run.run()

        sim_step, trace_step = self.build()
        hooks_step = []
        sim_step.add_post_event_hook(lambda: hooks_step.append(
            sim_step.events_processed))
        while sim_step.step():
            pass

        assert trace_step == trace_run
        assert hooks_step == hooks_run
        assert sim_step.events_processed == sim_run.events_processed
        assert sim_step.now == sim_run.now


class TestFleetPass:
    """The measured fleet-overhaul before/after table (PR 5)."""

    def load(self):
        return json.loads(BASELINE_PATH.read_text())

    def test_recorded_fleet_scale_speedup_is_at_least_1_5x(self):
        fleet_pass = self.load()["fleet_pass"]
        assert fleet_pass["fleet_scale_speedup"] >= 1.5
        by_name = {row["name"]: row for row in fleet_pass["rows"]}
        fleet = by_name["fleet_scale"]
        assert fleet["after_homes_per_sec"] >= \
            1.5 * fleet["before_homes_per_sec"]
        assert fleet["speedup"] == pytest.approx(
            fleet["after_homes_per_sec"]
            / fleet["before_homes_per_sec"], rel=1e-3)

    def test_scheduler_insertion_did_not_regress(self):
        by_name = {row["name"]: row
                   for row in self.load()["fleet_pass"]["rows"]}
        assert by_name["scheduler_insertion"]["after_events_per_sec"] >= \
            by_name["scheduler_insertion"]["before_events_per_sec"]

    def test_recovery_replay_before_after_row_recorded(self):
        by_name = {row["name"]: row
                   for row in self.load()["fleet_pass"]["rows"]}
        row = by_name["recovery_replay"]
        assert row["before_events_per_sec"] > 0
        assert row["after_events_per_sec"] >= row["before_events_per_sec"]

    def test_n1000_scaling_row_recorded(self):
        scaling = self.load()["fleet_pass"]["scaling_n1000"]
        assert scaling["serial_homes_per_sec"] > 0
        assert scaling["process_workers"] >= 1
        # Pool overhead must not eat the scaling: per-worker efficiency
        # stays near 1 (exact multi-core shape is machine-dependent).
        assert scaling["pool_efficiency"] >= 0.7

    def test_process_benchmark_registered_and_tracked(self):
        from repro.bench.suites import load_builtin_suites

        load_builtin_suites()
        assert "fleet_scale_process" in registry.names("smoke")
        tracked = self.load()["benchmarks"]["fleet_scale_process"]
        assert tracked["homes_per_sec"] > 0
        assert "events_per_sec" not in tracked  # events fire in workers
