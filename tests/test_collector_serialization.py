"""Tests for the metrics collector and serialization reconstruction."""

import pytest

from repro.metrics.collector import (analyze, parallelism_samples,
                                     stretch_factors)
from repro.metrics.serialization import reconstruct_serial_order
from repro.errors import SafeHomeError
from tests.conftest import Home, routine


class TestParallelism:
    def test_two_overlapping_routines(self):
        home = Home(model="ev", n_devices=2)
        home.submit(routine("a", [(0, "ON", 10.0)]), when=0.0)
        home.submit(routine("b", [(1, "ON", 10.0)]), when=2.0)
        result = home.run()
        samples = parallelism_samples(result)
        assert max(samples) == 2

    def test_serial_execution_never_exceeds_one(self):
        home = Home(model="gsv", n_devices=2)
        home.submit(routine("a", [(0, "ON", 5.0)]), when=0.0)
        home.submit(routine("b", [(1, "ON", 5.0)]), when=0.0)
        result = home.run()
        assert max(parallelism_samples(result)) == 1

    def test_empty(self):
        from repro.core.controller import RunResult
        empty = RunResult(model_name="ev", runs=[], end_state={},
                          makespan=0.0, device_write_logs={},
                          detection_events=[], device_access_order={})
        assert parallelism_samples(empty) == []


class TestStretch:
    def test_unblocked_routine_stretch_near_one(self):
        home = Home(model="ev", n_devices=1)
        home.submit(routine("a", [(0, "ON", 10.0)]))
        result = home.run()
        factors = stretch_factors(result)
        assert len(factors) == 1
        assert factors[0] == pytest.approx(1.0, abs=0.05)

    def test_blocked_mid_execution_stretches(self):
        # b grabs device 1 first; a acquires device 0, then waits for
        # device 1 mid-flight -> stretch > 1.
        home = Home(model="ev", scheduler="fcfs", n_devices=2)
        home.submit(routine("b", [(1, "ON", 20.0)]), when=0.0)
        a = home.submit(routine("a", [(0, "ON", 5.0), (1, "OFF", 5.0)]),
                        when=1.0)
        result = home.run()
        factors = stretch_factors(result)
        stretched = [f for f in factors if f > 1.3]
        assert stretched  # a waited ~15s inside a 10s routine


class TestAnalyze:
    def test_report_fields_and_row(self):
        home = Home(model="ev", n_devices=2)
        home.submit(routine("a", [(0, "ON", 1.0)]), when=0.0)
        home.submit(routine("b", [(1, "ON", 1.0)]), when=0.0)
        result = home.run()
        report = analyze(result, home.initial)
        assert report.routines == 2
        assert report.committed == 2
        assert report.final_congruent is True
        assert report.latency["n"] == 2
        assert report.norm_latency["p50"] >= 1.0
        row = report.row()
        assert row["model"] == "ev"
        assert row["final_ok"] is True

    def test_check_final_disabled(self):
        home = Home(model="ev", n_devices=1)
        home.submit(routine("a", [(0, "ON", 1.0)]))
        result = home.run()
        report = analyze(result, home.initial, check_final=False)
        assert report.final_congruent is None


class TestSerialOrderReconstruction:
    def test_arrival_order_when_conflicting(self):
        home = Home(model="ev", scheduler="fcfs", n_devices=1)
        runs = [home.submit(routine(f"r{i}", [(0, f"V{i}", 1.0)]),
                            when=i * 0.1) for i in range(4)]
        result = home.run()
        assert reconstruct_serial_order(result) == \
            [r.routine_id for r in runs]

    def test_cycle_detected_for_wv(self):
        """WV can produce non-serializable access orders; the
        reconstruction must refuse rather than fabricate an order."""
        home = Home(model="wv", n_devices=2)
        # a: dev0 then dev1 (slow); b: dev1 then dev0 (slow) -> each is
        # first on one device: a<b on dev0, b<a on dev1 -> cycle.
        home.submit(routine("a", [(0, "A0", 4.0), (1, "A1", 4.0)]),
                    when=0.0)
        home.submit(routine("b", [(1, "B1", 4.0), (0, "B0", 4.0)]),
                    when=0.0)
        result = home.run()
        with pytest.raises(SafeHomeError):
            reconstruct_serial_order(result)

    def test_aborted_routines_excluded(self):
        home = Home(model="ev", n_devices=2)
        good = home.submit(routine("good", [(0, "ON", 1.0)]), when=0.0)
        bad = home.submit(routine("bad", [(1, "ON", 10.0)]), when=0.0)
        home.detect_failure(1, at=3.0)
        result = home.run()
        order = reconstruct_serial_order(result)
        assert order == [good.routine_id]


class TestSchedulerStats:
    def test_stats_counted(self):
        home = Home(model="ev", scheduler="timeline", n_devices=2)
        home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 1.0)]),
                    when=0.0)
        home.submit(routine("r2", [(1, "C", 1.0)]), when=0.1)
        home.run()
        stats = home.controller.scheduler_stats
        assert stats["placements"] == 2
        assert stats["pre_leases"] >= 1
