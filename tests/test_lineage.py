"""Tests for the lineage table: invariants 1-4, status inference (Fig 8),
commit compaction (Fig 7), gaps, and rollback targets (§4.3)."""

import math

import pytest

from repro.core.lineage import (UNSET, Lineage, LineageTable, LockAccess,
                                LockStatus)
from repro.errors import LineageInvariantError


def access(rid, dev=0, start=0.0, dur=1.0, status=LockStatus.SCHEDULED,
           **kwargs):
    entry = LockAccess(routine_id=rid, device_id=dev, planned_start=start,
                       duration=dur, **kwargs)
    entry.status = status
    return entry


def never_finished(_rid):
    return False


class TestInsertion:
    def test_append_and_lookup(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.append(access(2))
        assert lineage.owners() == [1, 2]
        assert lineage.index_of(2) == 1
        assert lineage.entry_for(3) is None

    def test_duplicate_routine_rejected(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        with pytest.raises(LineageInvariantError):
            lineage.append(access(1))

    def test_wrong_device_rejected(self):
        lineage = Lineage(0)
        with pytest.raises(LineageInvariantError):
            lineage.append(access(1, dev=5))

    def test_insert_before_scheduled_ok(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.insert(0, access(2))
        assert lineage.owners() == [2, 1]

    def test_insert_scheduled_before_acquired_rejected(self):
        lineage = Lineage(0)
        lineage.append(access(1, status=LockStatus.ACQUIRED))
        with pytest.raises(LineageInvariantError):
            lineage.insert(0, access(2))

    def test_remove(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        assert lineage.remove(1).routine_id == 1
        assert lineage.remove(1) is None


class TestLockLifecycle:
    def test_acquire_release(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        entry = lineage.acquire(1, now=2.0)
        assert entry.status is LockStatus.ACQUIRED
        assert entry.acquired_at == 2.0
        lineage.release(1, now=3.0)
        assert entry.status is LockStatus.RELEASED
        assert entry.released_at == 3.0

    def test_acquire_out_of_order_rejected(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.append(access(2))
        with pytest.raises(LineageInvariantError):
            lineage.acquire(2, now=0.0)

    def test_double_acquire_rejected(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.acquire(1, now=0.0)
        with pytest.raises(LineageInvariantError):
            lineage.acquire(1, now=1.0)

    def test_release_without_acquire_rejected(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        with pytest.raises(LineageInvariantError):
            lineage.release(1, now=0.0)

    def test_can_acquire_requires_released_prefix(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.append(access(2))
        assert lineage.can_acquire(1, finished=never_finished)
        assert not lineage.can_acquire(2, finished=never_finished)
        lineage.acquire(1, now=0.0)
        lineage.release(1, now=1.0)
        assert lineage.can_acquire(2, finished=never_finished)

    def test_dirty_read_guard(self):
        # A reader may not acquire past a released access whose
        # unfinished owner wrote the device (§4.1 post-lease rule).
        lineage = Lineage(0)
        writer = access(1, writes=True)
        lineage.append(writer)
        lineage.append(access(2, reads=True, writes=False))
        lineage.acquire(1, now=0.0)
        lineage.release(1, now=1.0)
        assert not lineage.can_acquire(2, finished=never_finished,
                                       wants_read=True)
        assert lineage.can_acquire(2, finished=lambda rid: rid == 1,
                                   wants_read=True)
        # Writers are unaffected ("last writer wins").
        assert lineage.can_acquire(2, finished=never_finished,
                                   wants_read=False)


class TestLocalInvariants:
    def test_invariant2_single_acquired(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.entries[0].status = LockStatus.ACQUIRED
        lineage.append(access(2))
        lineage.entries[1].status = LockStatus.ACQUIRED
        with pytest.raises(LineageInvariantError):
            lineage.check_local_invariants()

    def test_invariant3_order(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        lineage.append(access(2))
        lineage.entries[1].status = LockStatus.RELEASED  # S before R
        with pytest.raises(LineageInvariantError):
            lineage.check_local_invariants()

    def test_invariant1_planned_overlap(self):
        lineage = Lineage(0)
        lineage.append(access(1, start=0.0, dur=5.0))
        lineage.entries[0].status = LockStatus.SCHEDULED
        entry = access(2, start=3.0, dur=5.0)
        lineage.entries.append(entry)  # bypass insert checks
        assert lineage.planned_overlaps()


class TestStatusInference:
    """Fig 8's three cases."""

    def test_acquired_entry_wins(self):
        lineage = Lineage(0, committed_state=10)
        first = access(1)
        first.status = LockStatus.RELEASED
        first.applied_value = 15
        lineage.entries.append(first)
        second = access(2)
        second.status = LockStatus.ACQUIRED
        second.applied_value = 25
        lineage.entries.append(second)
        assert lineage.inferred_state() == 25

    def test_rightmost_released_next(self):
        lineage = Lineage(0, committed_state=10)
        for rid, value in ((1, 12), (2, 15)):
            entry = access(rid)
            entry.status = LockStatus.RELEASED
            entry.applied_value = value
            lineage.entries.append(entry)
        assert lineage.inferred_state() == 15

    def test_committed_state_fallback(self):
        lineage = Lineage(0, committed_state=10)
        lineage.append(access(1))  # scheduled, nothing applied
        assert lineage.inferred_state() == 10


class TestRollbackTargets:
    def test_previous_applied_entry(self):
        lineage = Lineage(0, committed_state="OFF")
        first = access(1)
        first.status = LockStatus.RELEASED
        first.applied_value = "ON"
        lineage.entries.append(first)
        second = access(2, status=LockStatus.ACQUIRED)
        second.applied_value = "DIM"
        lineage.entries.append(second)
        assert lineage.rollback_target(2) == "ON"

    def test_committed_fallback(self):
        lineage = Lineage(0, committed_state="OFF")
        lineage.append(access(1))
        assert lineage.rollback_target(1) == "OFF"

    def test_is_last_writer(self):
        lineage = Lineage(0)
        first = access(1)
        first.status = LockStatus.RELEASED
        first.applied_value = "ON"
        lineage.entries.append(first)
        assert lineage.is_last_writer(1)
        second = access(2, status=LockStatus.ACQUIRED)
        second.applied_value = "OFF"
        lineage.entries.append(second)
        assert not lineage.is_last_writer(1)
        assert lineage.is_last_writer(2)

    def test_never_applied_is_not_last_writer(self):
        lineage = Lineage(0)
        lineage.append(access(1))
        assert not lineage.is_last_writer(1)


class TestGaps:
    def test_empty_lineage_single_tail_gap(self):
        lineage = Lineage(0)
        gaps = lineage.gaps(now=5.0)
        assert len(gaps) == 1
        assert gaps[0].start == 5.0
        assert gaps[0].end == math.inf
        assert gaps[0].index == 0

    def test_gap_between_scheduled_entries(self):
        lineage = Lineage(0)
        lineage.append(access(1, start=10.0, dur=5.0))
        gaps = lineage.gaps(now=0.0)
        # gap before the entry [0,10), then tail after 15.
        assert gaps[0].start == 0.0
        assert gaps[0].end == 10.0
        assert gaps[0].index == 0
        assert gaps[-1].start == 15.0
        assert gaps[-1].index == 1

    def test_acquired_entry_projection(self):
        lineage = Lineage(0)
        lineage.append(access(1, dur=10.0))
        lineage.acquire(1, now=2.0)
        gaps = lineage.gaps(now=4.0)
        assert gaps[0].start == 12.0  # acquired_at + duration

    def test_overdue_acquired_projects_to_now(self):
        lineage = Lineage(0)
        lineage.append(access(1, dur=1.0))
        lineage.acquire(1, now=0.0)
        gaps = lineage.gaps(now=50.0)
        assert gaps[0].start == 50.0

    def test_released_entries_ignored(self):
        lineage = Lineage(0)
        lineage.append(access(1, dur=1.0))
        lineage.acquire(1, now=0.0)
        lineage.release(1, now=1.0)
        gaps = lineage.gaps(now=2.0)
        assert gaps[0].index == 1  # insertion after the released entry
        assert gaps[0].start == 2.0

    def test_gap_fits_and_placement(self):
        lineage = Lineage(0)
        lineage.append(access(1, start=10.0, dur=5.0))
        gap = lineage.gaps(now=0.0)[0]
        assert gap.fits(0.0, 10.0)
        assert not gap.fits(0.0, 10.5)
        assert not gap.fits(6.0, 5.0)
        assert gap.placement(3.0) == 3.0


class TestLineageTable:
    def test_committed_lookup_lazy(self):
        table = LineageTable(committed_lookup=lambda d: f"init-{d}")
        assert table.lineage(3).committed_state == "init-3"

    def test_remove_routine_across_devices(self):
        table = LineageTable()
        table.lineage(0).append(access(1, dev=0))
        table.lineage(1).append(access(1, dev=1))
        table.lineage(2).append(access(2, dev=2))
        assert sorted(table.remove_routine(1)) == [0, 1]
        assert table.lineage(2).owners() == [2]

    def test_compaction_removes_left_entries(self):
        table = LineageTable()
        lineage = table.lineage(0)
        older = access(1, dev=0)
        older.status = LockStatus.RELEASED
        older.applied_value = "A"
        lineage.entries.append(older)
        mine = access(2, dev=0)
        mine.status = LockStatus.RELEASED
        mine.applied_value = "B"
        lineage.entries.append(mine)
        later = access(3, dev=0)
        lineage.entries.append(later)
        compacted = table.compact_commit(2, 0)
        assert compacted == [1]
        assert lineage.owners() == [3]

    def test_compaction_refuses_dropping_acquired(self):
        table = LineageTable()
        lineage = table.lineage(0)
        # Force the (invariant-3-violating) state "ACQUIRED left of
        # RELEASED" to confirm compaction defends itself.
        busy = access(1, dev=0, status=LockStatus.ACQUIRED)
        lineage.entries.append(busy)
        mine = access(2, dev=0)
        mine.status = LockStatus.RELEASED
        lineage.entries.append(mine)
        with pytest.raises(LineageInvariantError):
            table.compact_commit(2, 0)

    def test_invariant4_detects_contradiction(self):
        table = LineageTable()
        table.lineage(0).append(access(1, dev=0))
        table.lineage(0).append(access(2, dev=0))
        table.lineage(1).append(access(2, dev=1))
        table.lineage(1).append(access(1, dev=1))
        with pytest.raises(LineageInvariantError):
            table.verify_serialize_before()

    def test_invariant4_accepts_consistent_orders(self):
        table = LineageTable()
        table.lineage(0).append(access(1, dev=0, start=0.0))
        table.lineage(0).append(access(2, dev=0, start=2.0))
        table.lineage(1).append(access(1, dev=1, start=1.0))
        table.lineage(1).append(access(2, dev=1, start=3.0))
        table.verify_serialize_before()
        table.verify_all()
