"""Live visibility-model migration: the equivalence grid and edges.

The load-bearing contract (docs/control-plane.md): a home migrated at a
checkpoint boundary is *byte-identical* — full captured hub state — to
a home that ran under the target model from the start, because WAL
inputs + seed are a complete recipe and replay re-derives everything
else under the new policy.
"""

import pytest

from repro.errors import MigrationError, RecoveryError, SafeHomeError
from repro.hub.durability.checkpoint import state_digest
from repro.hub.durability.recovery import DurabilityConfig
from repro.hub.safehome import SafeHome
from repro.metrics.oracle import check_run
from repro.workloads.fleet_mix import build_fleet_workload
from repro.workloads.synth import HUNT_MODELS

SEED = 11
SCENARIO = "cooling"
CHECKPOINT_EVERY = 8


def _fresh(model, execution="serial", durable=True):
    home = SafeHome(
        visibility=model, execution=execution, seed=SEED,
        durability=DurabilityConfig(checkpoint_every=CHECKPOINT_EVERY)
        if durable else None)
    home.load_workload(build_fleet_workload(SCENARIO, seed=SEED))
    return home


def _boundaries(execution):
    """Every checkpoint-boundary time of a crash-free baseline run."""
    home = _fresh("wv", execution)
    home.run()
    times = sorted({cp.time for cp in home.durability.checkpoints
                    if cp.time > 0})
    assert times, "baseline run produced no checkpoint boundaries"
    return times


@pytest.mark.parametrize("execution", ["serial", "parallel"])
@pytest.mark.parametrize("target", HUNT_MODELS)
def test_migration_grid_equivalent_to_fresh_target_run(target, execution):
    reference = _fresh(target, execution)
    reference.run()
    reference_digest = state_digest(reference._capture_state())

    for at in _boundaries(execution):
        home = _fresh("wv", execution)
        home.run(until=at)
        report = home.migrate(target)
        assert report.from_model is not None
        assert report.checkpoint_digest
        result = home.run()
        assert state_digest(home._capture_state()) == reference_digest, \
            f"migrated wv->{target} ({execution}) at t={at} diverged " \
            f"from the fresh {target} run"
        oracle = check_run(result, home.initial)
        assert oracle.ok, oracle.violations


def test_migration_report_and_wal_marker():
    home = _fresh("wv")
    home.run(until=100.0)
    report = home.migrate("ev")
    assert report.from_model == "wv"
    assert report.to_model == "ev"
    assert home.migrations == [report]
    row = report.row()
    assert row["from_model"] == "wv" and row["to_model"] == "ev"
    assert "wall_s" not in row  # rows are deterministic
    markers = [r for r in home.durability.wal.records
               if r.type == "migration"]
    assert len(markers) == 1
    assert markers[0].payload["digest"] == report.checkpoint_digest
    # The migrated home keeps running and stays recoverable.
    home.crash(at=300.0)
    home.run()
    home.recover()
    result = home.run()
    assert check_run(result, home.initial).ok


def test_migrate_requires_durability():
    home = SafeHome(visibility="wv", seed=SEED)
    home.load_workload(build_fleet_workload(SCENARIO, seed=SEED))
    with pytest.raises(SafeHomeError, match="durable"):
        home.migrate("ev")


def test_migrate_refuses_crashed_hub():
    home = _fresh("wv")
    home.crash(at=50.0)
    home.run()
    assert home.crashed
    with pytest.raises(SafeHomeError):
        home.migrate("ev")


def test_cancel_crash_withdraws_pending_plan_before_migration():
    home = _fresh("wv")
    home.crash(at=5000.0)       # scheduled far beyond the workload
    home.run(until=100.0)
    home.cancel_crash()
    home.migrate("ev")
    result = home.run()
    assert not home.crashed     # the cancelled plan never replays
    cancelled = [r for r in home.durability.wal.records
                 if r.type == "crash-cancelled"]
    assert cancelled
    assert check_run(result, home.initial).ok


def test_cancel_crash_without_pending_plan_is_a_noop():
    home = _fresh("wv")
    home.run(until=100.0)
    records_before = len(home.durability.wal.records)
    home.cancel_crash()
    assert len(home.durability.wal.records) == records_before


def test_migration_failure_leaves_hub_crashed_with_wal_intact():
    home = _fresh("wv")
    home.run(until=100.0)
    records = list(home.durability.wal.records)
    original_build = home._build_stack

    def broken_build():
        original_build()
        raise RuntimeError("synthetic stack-rebuild failure")

    home._build_stack = broken_build
    with pytest.raises(MigrationError, match="synthetic"):
        home.migrate("ev")
    assert home.crashed
    assert home._ctor["visibility"] == "wv"
    # The pre-migration records survive verbatim (the forced boundary
    # checkpoint is the only addition).
    kept = [r.identity() for r in home.durability.wal.records]
    assert kept[:len(records)] == [r.identity() for r in records]
    # A failed migration is *failed*, not crashed-mid-run: there is no
    # crash boundary to replay to, and recover() says so cleanly (the
    # fleet supervisor catches this and abandons the home).
    home._build_stack = original_build
    with pytest.raises(RecoveryError, match="no crash record"):
        home.recover()
