"""Integration tests for the parallel plan strategy across all five
visibility models: correctness (congruence / serializability), the
fan-out speedup, determinism and abort handling mid-plan."""

import pytest

from repro.core.command import Command
from repro.core.controller import ControllerConfig, RoutineStatus
from repro.core.routine import Routine
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.workloads.fanout import fanout_scenario
from repro.workloads.scenarios import morning_scenario, party_scenario
from tests.conftest import Home, routine

MODELS = ("wv", "gsv", "sgsv", "psv", "ev", "occ")
LOCKING_MODELS = ("gsv", "sgsv", "psv", "ev", "occ")


def run_scenario(factory, model, execution, seed=0, check_final=True):
    setup = ExperimentSetup(model=model, seed=seed,
                            check_final=check_final,
                            config=ControllerConfig(execution=execution))
    return run_workload(factory(seed=seed), setup)


class TestCongruenceUnderParallel:
    @pytest.mark.parametrize("model", LOCKING_MODELS)
    @pytest.mark.parametrize("factory", [morning_scenario, party_scenario],
                             ids=["morning", "party"])
    def test_final_congruent(self, model, factory):
        _result, report, _c = run_scenario(factory, model, "parallel")
        assert report.final_congruent is True

    @pytest.mark.parametrize("model", MODELS)
    def test_fanout_congruent_and_all_commit(self, model):
        result, report, _c = run_scenario(fanout_scenario, model,
                                          "parallel")
        assert len(result.aborted) == 0
        assert report.final_congruent is True

    @pytest.mark.parametrize("scheduler", ["fcfs", "jit", "timeline"])
    def test_ev_parallel_all_schedulers(self, scheduler):
        setup = ExperimentSetup(
            model="ev", scheduler=scheduler, seed=0,
            config=ControllerConfig(execution="parallel"))
        _result, report, controller = run_workload(
            morning_scenario(seed=0), setup)
        assert report.final_congruent is True
        controller.table.verify_all()


class TestFanoutSpeedup:
    @pytest.mark.parametrize("model", MODELS)
    def test_parallel_cuts_plan_makespan(self, model):
        _sr, serial, _c1 = run_scenario(fanout_scenario, model, "serial",
                                        check_final=False)
        _pr, parallel, _c2 = run_scenario(fanout_scenario, model,
                                          "parallel", check_final=False)
        assert serial.committed == parallel.committed
        speedup = serial.plan_makespan["p50"] / \
            parallel.plan_makespan["p50"]
        assert speedup >= 1.5, f"{model}: only {speedup:.2f}x"


class TestDeterminism:
    @pytest.mark.parametrize("execution", ["serial", "parallel"])
    @pytest.mark.parametrize("model", ["ev", "psv", "wv"])
    def test_same_seed_same_report(self, model, execution):
        rows = []
        for _ in range(2):
            _r, report, _c = run_scenario(morning_scenario, model,
                                          execution)
            rows.append((report.row(), report.serial_order,
                         report.lock_wait, report.plan_makespan))
        assert rows[0] == rows[1]


class TestParallelSemantics:
    def wide(self, name="wide", devices=(0, 1, 2, 3), duration=5.0):
        return routine(name, [(d, "ON", duration) for d in devices])

    def test_parallel_runs_disjoint_commands_concurrently(self):
        home = Home(model="ev",
                    config=ControllerConfig(execution="parallel"),
                    n_devices=4)
        run = home.submit(self.wide())
        home.run()
        assert run.status is RoutineStatus.COMMITTED
        # All four commands started within one network hop of each
        # other instead of back-to-back.
        starts = [e.started_at for e in run.executions]
        assert max(starts) - min(starts) < 1.0
        assert run.finish_time < 4 * 5.0

    def test_serial_config_keeps_chain(self):
        home = Home(model="ev", n_devices=4)
        run = home.submit(self.wide())
        home.run()
        starts = [e.started_at for e in run.executions]
        assert starts == sorted(starts)
        assert run.finish_time >= 4 * 5.0

    def test_cancel_mid_plan_rolls_back_all_devices(self):
        home = Home(model="ev",
                    config=ControllerConfig(execution="parallel"),
                    n_devices=4)
        run = home.submit(self.wide(duration=10.0))
        home.sim.call_at(3.0, home.controller.request_abort, run,
                         "cancelled by user")
        home.run()
        assert run.status is RoutineStatus.ABORTED
        assert not run.inflight
        for device_id in range(4):
            assert home.registry.get(device_id).state == \
                home.initial[device_id]

    def test_must_failure_aborts_whole_parallel_plan(self):
        home = Home(model="ev",
                    config=ControllerConfig(execution="parallel"),
                    n_devices=4)
        run = home.submit(self.wide(duration=10.0))
        home.detect_failure(2, at=0.5)
        home.run()
        assert run.status is RoutineStatus.ABORTED
        assert "device 2" in run.abort_reason or "unreachable" in \
            run.abort_reason

    def test_wv_parallel_serializes_same_device_through_fifo(self):
        home = Home(model="wv",
                    config=ControllerConfig(execution="parallel"),
                    n_devices=2)
        home.submit(routine("a", [(0, "A", 2.0), (1, "A1", 2.0)]))
        home.submit(routine("b", [(0, "B", 2.0), (1, "B1", 2.0)]))
        result = home.run()
        # One writer at a time per device: the write log never shows
        # overlapping in-flight executions on device 0.
        assert len(result.committed) == 2
        queues = home.controller.device_queues
        assert not queues.busy(0) and not queues.busy(1)

    def test_gsv_parallel_still_one_routine_at_a_time(self):
        home = Home(model="gsv",
                    config=ControllerConfig(execution="parallel"),
                    n_devices=4)
        first = home.submit(self.wide("first", devices=(0, 1)))
        second = home.submit(self.wide("second", devices=(2, 3)))
        home.run()
        assert first.status is RoutineStatus.COMMITTED
        assert second.status is RoutineStatus.COMMITTED
        # Disjoint devices, but GSV's global lock still serializes.
        assert second.start_time >= first.finish_time

    def test_psv_parallel_disjoint_routines_overlap(self):
        home = Home(model="psv",
                    config=ControllerConfig(execution="parallel"),
                    n_devices=4)
        first = home.submit(self.wide("first", devices=(0, 1)))
        second = home.submit(self.wide("second", devices=(2, 3)))
        home.run()
        assert second.start_time < first.finish_time

    def test_lock_wait_recorded_for_admission(self):
        home = Home(model="gsv", n_devices=2)
        home.submit(routine("a", [(0, "A", 5.0)]))
        blocked = home.submit(routine("b", [(1, "B", 1.0)]))
        home.run()
        assert blocked.lock_wait_s > 0.0


class TestConfigValidation:
    def test_unknown_execution_strategy_rejected(self):
        with pytest.raises(ValueError):
            Home(model="ev",
                 config=ControllerConfig(execution="quantum"))

    def test_last_index_map_precomputed(self):
        run_routine = Routine(name="r", commands=[
            Command(device_id=3, value="A", duration=1.0),
            Command(device_id=3, value="B", duration=1.0),
            Command(device_id=5, value="C", duration=1.0),
        ])
        home = Home(model="wv", n_devices=6)
        run = home.submit(run_routine)
        assert run.last_index_by_device == {3: 1, 5: 2}
