"""The durability property the paper's reliability argument needs:

crash the hub at seeded event indexes of a deterministic scenario,
recover via checkpoint + WAL replay, and the final congruence report is
byte-identical to the uninterrupted run — for all five visibility
models, under both the serial and parallel execution strategies.

Crash points are drawn by hypothesis under the shared ``repro``
settings profile (see ``tests/conftest.py``): derandomized, so the
sampled indexes are pinned per test id, and with the example budget
tunable via ``REPRO_HYPOTHESIS_EXAMPLES`` — raise it locally for a
sweep approaching the old exhaustive every-index loop.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.hub.durability import DurabilityConfig
from repro.hub.safehome import SafeHome

MODELS = ("wv", "gsv", "psv", "ev", "occ")
EXECUTIONS = ("serial", "parallel")

# Checkpoint every few records so most crash points land past at least
# one checkpoint (exercising digest verification, not just raw replay).
CHECKPOINT_EVERY = 8

# Uninterrupted reference runs, computed once per (model, execution):
# (reference report JSON, total event count).
_BASELINES = {}


def build_home(model, execution, seed=3):
    home = SafeHome(
        visibility=model, execution=execution, seed=seed,
        durability=DurabilityConfig(checkpoint_every=CHECKPOINT_EVERY))
    home.add_device("window", "w")
    home.add_device("ac", "a")
    home.add_device("light", "l")
    home.register_routine_spec({"routineName": "cool", "commands": [
        {"device": "w", "action": "CLOSED", "durationSec": 2},
        {"device": "a", "action": "ON", "durationSec": 3}]})
    home.register_routine_spec({"routineName": "party", "commands": [
        {"device": "l", "action": "ON", "durationSec": 1},
        {"device": "a", "action": "OFF", "durationSec": 2}]})
    home.plan_failure("l", fail_at=1.5, restart_at=4.0)
    home.invoke("cool")
    home.invoke("party", at=0.5)
    return home


def final_report(home, model):
    # WV is non-serializable by design; the serial-order reconstruction
    # behind check_final is only asked of the serializable models.
    report = home.report(check_final=model != "wv")
    row = dict(report.row())
    row["serial_order"] = list(report.serial_order)
    row["end_state"] = {str(k): v for k, v in
                        sorted(home.last_result.end_state.items())}
    return json.dumps(row, sort_keys=True, default=repr)


def baseline_for(model, execution):
    key = (model, execution)
    if key not in _BASELINES:
        baseline = build_home(model, execution)
        baseline.run()
        reference = final_report(baseline, model)
        total_events = baseline.sim.events_processed
        assert total_events > 10, "scenario too small to be meaningful"
        _BASELINES[key] = (reference, total_events)
    return _BASELINES[key]


@pytest.mark.parametrize("execution", EXECUTIONS)
@pytest.mark.parametrize("model", MODELS)
@given(data=st.data())
def test_crash_at_any_event_index_is_replay_transparent(model,
                                                        execution,
                                                        data):
    reference, total_events = baseline_for(model, execution)
    index = data.draw(st.integers(min_value=1, max_value=total_events),
                      label="crash after event")

    home = build_home(model, execution)
    home.crash(after_events=index)
    home.run()
    assert home.crashed, (model, execution, index)
    report = home.recover()
    assert report.replayed_events == index
    home.run()
    assert final_report(home, model) == reference, \
        f"{model}/{execution}: divergence after crash at event " \
        f"{index}/{total_events}"
