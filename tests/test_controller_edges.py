"""Edge-case tests for the controller base machinery: abort-pending
in-flight handling, read commands, reconciliation, bookkeeping."""

import pytest

from repro.core.command import Command
from repro.core.controller import RoutineStatus
from repro.core.routine import Routine
from repro.core.visibility import VisibilityModel
from repro.errors import SafeHomeError
from tests.conftest import Home, routine


class TestAbortPending:
    def test_abort_waits_for_inflight_command(self):
        """request_abort during a command defers until the command
        resolves (an API call cannot be recalled)."""
        home = Home(model="ev", n_devices=2)
        run = home.submit(routine("r", [(0, "ON", 10.0)]))
        home.sim.call_at(3.0, home.controller.request_abort, run, "test")
        home.run()
        assert run.status is RoutineStatus.ABORTED
        assert run.abort_reason == "test"
        # The in-flight command finished before the abort processed.
        assert run.executions[0].finished_at is not None
        assert run.finish_time >= run.executions[0].finished_at

    def test_second_abort_reason_not_overwritten(self):
        home = Home(model="ev", n_devices=1)
        run = home.submit(routine("r", [(0, "ON", 10.0)]))
        home.sim.call_at(3.0, home.controller.request_abort, run, "first")
        home.sim.call_at(4.0, home.controller.request_abort, run,
                         "second")
        home.run()
        assert run.abort_reason == "first"

    def test_abort_after_done_is_noop(self):
        home = Home(model="ev", n_devices=1)
        run = home.submit(routine("r", [(0, "ON", 1.0)]))
        home.run()
        home.controller.abort(run, "too late")
        assert run.status is RoutineStatus.COMMITTED


class TestReadCommands:
    def test_read_observes_current_state(self):
        home = Home(model="ev", n_devices=1)
        home.registry.get(0).state = "PRESET"
        reader = Routine(name="reader", commands=[
            Command(device_id=0, is_read=True)])
        run = home.submit(reader)
        home.run()
        assert run.status is RoutineStatus.COMMITTED
        assert run.executions[0].observed == "PRESET"

    def test_read_on_failed_device_aborts_must(self):
        home = Home(model="ev", n_devices=1)
        home.registry.get(0).fail()
        reader = Routine(name="reader", commands=[
            Command(device_id=0, is_read=True)])
        run = home.submit(reader)
        home.run()
        assert run.status is RoutineStatus.ABORTED

    def test_reads_do_not_change_state_or_log(self):
        home = Home(model="ev", n_devices=1)
        reader = Routine(name="reader", commands=[
            Command(device_id=0, is_read=True)])
        home.submit(reader)
        result = home.run()
        assert result.device_write_logs[0] == []


class TestReconciliation:
    def test_no_reconcile_when_disabled(self):
        from repro.core.controller import ControllerConfig
        config = ControllerConfig(reconcile_on_restart=False)
        home = Home(model="ev", n_devices=2, config=config)
        run = home.submit(routine("r", [(0, "ON", 2.0), (1, "ON", 6.0)]))
        home.detect_failure(1, at=4.0)
        home.detect_restart(1, at=20.0)
        result = home.run()
        assert run.status is RoutineStatus.ABORTED
        # Device 1 keeps its mid-routine ON state: nobody fixed it.
        assert result.end_state[1] == "ON"

    def test_reconcile_applies_latest_pending_value(self):
        home = Home(model="ev", n_devices=2)
        run = home.submit(routine("r", [(0, "ON", 2.0), (1, "ON", 6.0)]))
        home.detect_failure(1, at=4.0)
        home.detect_restart(1, at=30.0)
        result = home.run()
        assert result.end_state[1] == "OFF"
        sources = [s for (_t, _v, s) in result.device_write_logs[1]]
        assert ("reconcile", 1) in sources


class TestBookkeeping:
    def test_run_by_id_and_is_finished(self):
        home = Home(model="ev", n_devices=1)
        run = home.submit(routine("r", [(0, "ON", 1.0)]))
        assert home.controller.run_by_id(run.routine_id) is run
        assert not home.controller.is_finished(run.routine_id)
        home.run()
        assert home.controller.is_finished(run.routine_id)
        with pytest.raises(SafeHomeError):
            home.controller.run_by_id(999)

    def test_routine_ids_increment(self):
        home = Home(model="ev", n_devices=1)
        runs = [home.submit(routine(f"r{i}", [(0, "ON", 0.5)]),
                            when=i * 1.0) for i in range(3)]
        assert [r.routine_id for r in runs] == [0, 1, 2]

    def test_active_runs_and_all_done(self):
        home = Home(model="ev", n_devices=1)
        home.submit(routine("r", [(0, "ON", 1.0)]))
        assert len(home.controller.active_runs()) == 1
        assert not home.controller.all_done()
        home.run()
        assert home.controller.active_runs() == []
        assert home.controller.all_done()

    def test_wait_time_and_latency_properties(self):
        home = Home(model="gsv", n_devices=1)
        a = home.submit(routine("a", [(0, "ON", 5.0)]), when=0.0)
        b = home.submit(routine("b", [(0, "OFF", 5.0)]), when=0.0)
        home.run()
        assert a.wait_time == pytest.approx(0.0, abs=0.1)
        assert b.wait_time > 4.0
        assert a.latency > 5.0
        aborted = home.controller.submit(
            routine("c", [(0, "ON", 1.0)]), when=home.sim.now)
        home.controller.abort(aborted, "test")
        assert aborted.latency is None


class TestVisibilityParsing:
    def test_parse_aliases(self):
        assert VisibilityModel.parse("EV") is VisibilityModel.EV
        assert VisibilityModel.parse(VisibilityModel.WV) is \
            VisibilityModel.WV

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            VisibilityModel.parse("acid")


class TestRunResultHelpers:
    def test_rollback_overheads_and_abort_rate(self):
        home = Home(model="gsv", n_devices=2)
        good = home.submit(routine("good", [(0, "ON", 1.0)]), when=0.0)
        bad = home.submit(routine("bad", [(0, "OFF", 1.0),
                                          (1, "ON", 5.0)]), when=0.0)
        home.detect_failure(1, at=4.0)
        result = home.run()
        assert result.abort_rate == 0.5
        overheads = result.rollback_overheads()
        assert len(overheads) == 1
        assert 0 < overheads[0] <= 1.0
