"""Property-based tests (hypothesis): the heart of the correctness
argument.

* EV/PSV/GSV end states are always serially equivalent, for random
  workloads, schedulers, leasing configurations and failure injections.
* Lineage invariants 1-4 hold throughout execution (paranoid mode).
* Every routine terminates (no deadlock/livelock).
* The serialization order derived from device access sequences is
  acyclic and replays to the observed end state.
"""

from hypothesis import given, settings, strategies as st

from repro.core.controller import ControllerConfig, RoutineStatus
from repro.metrics.congruence import final_state_serializable
from repro.metrics.serialization import (reconstruct_serial_order,
                                         validate_serial_order)
from tests.conftest import Home, routine


@st.composite
def workload_strategy(draw, max_routines=6, max_devices=4,
                      max_commands=3):
    n_devices = draw(st.integers(2, max_devices))
    n_routines = draw(st.integers(2, max_routines))
    routines = []
    for index in range(n_routines):
        n_commands = draw(st.integers(1, min(max_commands, n_devices)))
        devices = draw(st.permutations(range(n_devices)))
        steps = []
        for command_index in range(n_commands):
            device = devices[command_index]
            value = draw(st.sampled_from(["ON", "OFF", "V1", "V2"]))
            duration = draw(st.sampled_from([0.0, 0.5, 2.0, 10.0]))
            steps.append((device, value, duration))
        at = draw(st.sampled_from([0.0, 0.1, 0.5, 1.0, 5.0]))
        routines.append((routine(f"r{index}", steps), at))
    return n_devices, routines


SERIALIZABLE_MODELS = ["ev", "psv", "gsv", "sgsv"]


class TestSerializability:
    @settings(max_examples=40, deadline=None)
    @given(data=workload_strategy(),
           scheduler=st.sampled_from(["fcfs", "jit", "timeline"]),
           pre=st.booleans(), post=st.booleans())
    def test_ev_end_state_serializable(self, data, scheduler, pre, post):
        n_devices, arrivals = data
        config = ControllerConfig(pre_lease=pre, post_lease=post,
                                  paranoid=True)
        home = Home(model="ev", scheduler=scheduler, n_devices=n_devices,
                    config=config)
        for r, at in arrivals:
            home.submit(r, when=at)
        result = home.run()
        assert all(run.status is RoutineStatus.COMMITTED
                   for run in result.runs)
        assert final_state_serializable(result, home.initial,
                                        exhaustive_limit=6)
        order = reconstruct_serial_order(result)
        assert validate_serial_order(result, home.initial, order)

    @settings(max_examples=20, deadline=None)
    @given(data=workload_strategy(),
           model=st.sampled_from(["psv", "gsv"]))
    def test_strict_models_serializable(self, data, model):
        n_devices, arrivals = data
        home = Home(model=model, n_devices=n_devices)
        for r, at in arrivals:
            home.submit(r, when=at)
        result = home.run()
        assert final_state_serializable(result, home.initial,
                                        exhaustive_limit=6)

    @settings(max_examples=25, deadline=None)
    @given(data=workload_strategy(),
           model=st.sampled_from(SERIALIZABLE_MODELS),
           failed_device=st.integers(0, 3),
           fail_at=st.sampled_from([0.5, 2.0, 8.0]),
           restart_after=st.sampled_from([None, 1.0, 10.0]))
    def test_serializable_under_failures(self, data, model, failed_device,
                                         fail_at, restart_after):
        n_devices, arrivals = data
        failed_device %= n_devices
        home = Home(model=model, n_devices=n_devices,
                    config=ControllerConfig(paranoid=True))
        for r, at in arrivals:
            home.submit(r, when=at)
        home.detect_failure(failed_device, at=fail_at)
        if restart_after is not None:
            home.detect_restart(failed_device, at=fail_at + restart_after)
        result = home.run()
        # Everything terminates, one way or the other.
        assert all(run.done for run in result.runs)
        # Committed routines plus failure/restart events replay to the
        # observed end state.
        assert validate_serial_order(result, home.initial)

    @settings(max_examples=20, deadline=None)
    @given(data=workload_strategy(max_routines=5))
    def test_ev_matches_gsv_end_state_up_to_serial_order(self, data):
        """EV's end state equals SOME serial order — in particular, the
        set of serializable end states always contains GSV's."""
        n_devices, arrivals = data
        ev = Home(model="ev", n_devices=n_devices)
        for r, at in arrivals:
            ev.submit(r, when=at)
        ev_result = ev.run()
        assert final_state_serializable(ev_result, ev.initial,
                                        exhaustive_limit=5)


class TestTermination:
    @settings(max_examples=25, deadline=None)
    @given(data=workload_strategy(max_routines=8, max_devices=3),
           scheduler=st.sampled_from(["fcfs", "jit", "timeline"]))
    def test_no_deadlock_high_contention(self, data, scheduler):
        n_devices, arrivals = data
        home = Home(model="ev", scheduler=scheduler, n_devices=n_devices)
        for r, at in arrivals:
            home.submit(r, when=at)
        result = home.run()
        assert all(run.done for run in result.runs)


class TestTemporaryIncongruenceGuarantee:
    @settings(max_examples=20, deadline=None)
    @given(data=workload_strategy())
    def test_gsv_never_temporarily_incongruent(self, data):
        from repro.metrics.congruence import temporary_incongruence
        n_devices, arrivals = data
        home = Home(model="gsv", n_devices=n_devices)
        for r, at in arrivals:
            home.submit(r, when=at)
        result = home.run()
        assert temporary_incongruence(result) == 0.0
