"""Behavioral tests for Eventual Visibility: pipelining, serialization,
commit compaction, current-status inference."""

import pytest

from repro.core.controller import RoutineStatus
from repro.core.lineage import LockStatus
from repro.metrics.congruence import final_state_serializable
from tests.conftest import Home, routine


class TestEVPipelining:
    def test_breakfast_pipelining(self):
        """Two identical breakfast routines overlap (§2.1's EV example):
        the second starts its coffee while the first makes pancakes."""
        home = Home(model="ev", scheduler="timeline", n_devices=2)
        breakfast = [(0, "ON", 240.0), (0, "OFF", 1.0),
                     (1, "ON", 300.0), (1, "OFF", 1.0)]
        a = home.submit(routine("b1", breakfast), when=0.0)
        b = home.submit(routine("b2", breakfast), when=0.0)
        home.run()
        assert a.status is RoutineStatus.COMMITTED
        assert b.status is RoutineStatus.COMMITTED
        # Pipelined: total well under 2x serial duration.
        serial = 2 * (240 + 1 + 300 + 1)
        makespan = max(a.finish_time, b.finish_time)
        assert makespan < serial * 0.85

    def test_conflicting_routines_end_state_serializable(self):
        home = Home(model="ev", n_devices=3)
        home.submit(routine("on", [(0, "ON", 1.0), (1, "ON", 1.0),
                                   (2, "ON", 1.0)]), when=0.0)
        home.submit(routine("off", [(2, "OFF", 1.0), (1, "OFF", 1.0),
                                    (0, "OFF", 1.0)]), when=0.2)
        result = home.run()
        assert final_state_serializable(result, home.initial)

    def test_disjoint_routines_concurrent(self):
        home = Home(model="ev", n_devices=2)
        a = home.submit(routine("a", [(0, "ON", 5.0)]), when=0.0)
        b = home.submit(routine("b", [(1, "ON", 5.0)]), when=0.0)
        home.run()
        assert b.start_time < a.finish_time

    def test_lock_gated_execution_per_device(self):
        """Writes to a shared device never interleave out of lineage
        order even when three routines contend."""
        home = Home(model="ev", n_devices=1)
        runs = [home.submit(routine(f"r{i}", [(0, f"V{i}", 2.0)]),
                            when=0.0) for i in range(3)]
        result = home.run()
        log = result.device_write_logs[0]
        writers = [source for (_t, _v, source) in log]
        assert writers == sorted(writers)  # arrival-id order maintained


class TestEVCommit:
    def test_committed_state_updated(self):
        home = Home(model="ev", n_devices=1)
        home.submit(routine("r", [(0, "ON", 1.0)]))
        home.run()
        lineage = home.controller.table.lineage(0)
        assert lineage.committed_state == "ON"
        assert len(lineage.entries) == 0

    def test_commit_compaction_last_writer_wins(self):
        """R2 post-leases device 0 from R1, finishes first and commits;
        R1's later commit must not overwrite R2's committed state."""
        home = Home(model="ev", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A1", 1.0), (1, "LONG", 30.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "A2", 1.0)]), when=0.2)
        result = home.run()
        assert r2.finish_time < r1.finish_time  # committed earlier
        assert result.end_state[0] == "A2"
        assert home.controller.table.lineage(0).committed_state == "A2"
        assert final_state_serializable(result, home.initial)

    def test_serialization_order_respects_leases(self):
        home = Home(model="ev", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A1", 1.0), (1, "B1", 30.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "A2", 1.0)]), when=0.2)
        result = home.run()
        from repro.metrics.serialization import reconstruct_serial_order
        order = reconstruct_serial_order(result)
        # R1 before R2 on device 0 even though R2 finished first.
        assert order.index(r1.routine_id) < order.index(r2.routine_id)


class TestEVStatusInference:
    def test_inferred_state_matches_actual_during_run(self):
        home = Home(model="ev", n_devices=1, latency_ms=0.0)
        home.submit(routine("r", [(0, "ON", 10.0)]))
        home.sim.run(until=5.0)
        lineage = home.controller.table.lineage(0)
        assert lineage.inferred_state() == "ON"
        assert lineage.inferred_state() == home.registry.get(0).state

    def test_lineage_empty_after_all_done(self):
        home = Home(model="ev", n_devices=3)
        for i in range(3):
            home.submit(routine(f"r{i}", [(i, "ON", 1.0)]))
        home.run()
        for lineage in home.controller.table.lineages():
            assert len(lineage.entries) == 0


class TestEVParanoid:
    def test_invariants_hold_throughout(self):
        from repro.core.controller import ControllerConfig
        config = ControllerConfig(paranoid=True)
        home = Home(model="ev", n_devices=4, config=config)
        for i in range(8):
            devices = [(i % 4, "ON", 1.0), ((i + 1) % 4, "OFF", 2.0)]
            home.submit(routine(f"r{i}", devices), when=i * 0.3)
        result = home.run()
        assert all(r.status is RoutineStatus.COMMITTED
                   for r in result.runs)
