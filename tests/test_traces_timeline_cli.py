"""Tests for trace serialization, timeline rendering and the CLI."""

import json

import pytest

from repro.errors import RoutineSpecError
from repro.metrics.timeline import device_occupancy, render_timeline
from repro.workloads.micro import MicroParams, generate_microbenchmark
from repro.workloads.scenarios import morning_scenario, party_scenario
from repro.workloads.traces import (load_workload, save_workload,
                                    workload_from_dict, workload_to_dict)
from tests.conftest import Home, routine


class TestTraces:
    def test_round_trip_scenario(self, tmp_path):
        original = morning_scenario(seed=4)
        path = tmp_path / "morning.json"
        save_workload(original, path)
        loaded = load_workload(path)
        assert loaded.name == original.name
        assert loaded.devices == original.devices
        assert loaded.routine_count == original.routine_count
        for (r1, t1), (r2, t2) in zip(original.arrivals, loaded.arrivals):
            assert r1.name == r2.name
            assert t1 == t2
            assert [c.device_id for c in r1.commands] == \
                [c.device_id for c in r2.commands]
            assert [c.must for c in r1.commands] == \
                [c.must for c in r2.commands]

    def test_round_trip_streams_and_failures(self, tmp_path):
        params = MicroParams(routines=8, concurrency=2, devices=5,
                             failed_device_pct=40.0, long_routine_pct=0,
                             short_duration_s=2.0)
        original = generate_microbenchmark(params, seed=1)
        path = tmp_path / "micro.json"
        save_workload(original, path)
        loaded = load_workload(path)
        assert len(loaded.streams) == 2
        assert loaded.routine_count == 8
        assert len(loaded.failure_plans) == len(original.failure_plans)
        for p1, p2 in zip(original.failure_plans, loaded.failure_plans):
            assert (p1.device_id, p1.fail_at, p1.restart_at) == \
                (p2.device_id, p2.fail_at, p2.restart_at)

    def test_trace_is_plain_json(self, tmp_path):
        path = tmp_path / "party.json"
        save_workload(party_scenario(seed=1), path)
        data = json.loads(path.read_text())
        assert data["name"] == "party"
        assert isinstance(data["devices"], list)

    def test_loaded_trace_runs(self, tmp_path):
        from repro.experiments.runner import ExperimentSetup, run_workload
        path = tmp_path / "party.json"
        save_workload(party_scenario(seed=1), path)
        workload = load_workload(path)
        _result, report, _c = run_workload(
            workload, ExperimentSetup(model="ev", check_final=False))
        assert report.committed == 12

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RoutineSpecError):
            load_workload(path)

    def test_non_object_rejected(self):
        with pytest.raises(RoutineSpecError):
            workload_from_dict(["nope"])


class TestTimelineRendering:
    def run_small(self):
        home = Home(model="ev", n_devices=2)
        home.submit(routine("alpha", [(0, "ON", 5.0)]), when=0.0)
        home.submit(routine("beta", [(1, "ON", 5.0), (0, "OFF", 2.0)]),
                    when=0.0)
        return home.run()

    def test_device_occupancy_spans(self):
        result = self.run_small()
        spans = device_occupancy(result)
        assert set(spans) == {0, 1}
        names_on_dev0 = [name for (_s, _e, name) in spans[0]]
        assert names_on_dev0 == ["alpha", "beta"]

    def test_render_contains_lanes(self):
        result = self.run_small()
        text = render_timeline(result, {0: "plug-0", 1: "plug-1"})
        assert "plug-0" in text and "plug-1" in text
        assert "alpha"[:3] in text

    def test_render_empty(self):
        from repro.core.controller import RunResult
        empty = RunResult(model_name="ev", runs=[], end_state={},
                          makespan=0.0, device_write_logs={},
                          detection_events=[], device_access_order={})
        assert render_timeline(empty) == "(no activity)"


class TestCLI:
    def test_figures_unknown_name(self, capsys):
        from repro.cli import main
        assert main(["figures", "fig99"]) == 2

    def test_scenario_command(self, capsys):
        from repro.cli import main
        assert main(["scenario", "party", "--model", "wv"]) == 0
        out = capsys.readouterr().out
        assert "party under wv" in out

    def test_scenario_unknown(self):
        from repro.cli import main
        assert main(["scenario", "beach-day"]) == 2

    def test_export_and_run_trace(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "trace.json")
        assert main(["export-trace", "party", path]) == 0
        assert main(["run-trace", path, "--model", "ev"]) == 0
        out = capsys.readouterr().out
        assert "party under ev" in out

    def test_fig02_command(self, capsys):
        from repro.cli import main
        assert main(["figures", "fig02"]) == 0
        assert "makespan_units" in capsys.readouterr().out
