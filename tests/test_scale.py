"""Scale and stress tests: SafeHome at hundreds of routines.

The paper targets homes (tens of devices) and factories (hundreds);
these tests confirm the controller stays correct and tractable well
past the evaluation sizes.
"""

import time

import pytest

from repro.core.controller import RoutineStatus
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.serialization import (reconstruct_serial_order,
                                         validate_serial_order)
from repro.workloads.micro import MicroParams, generate_microbenchmark


class TestScale:
    @pytest.mark.parametrize("scheduler", ["fcfs", "jit", "timeline"])
    def test_300_routines_serializable(self, scheduler):
        params = MicroParams(routines=300, concurrency=12, devices=25,
                             long_routine_pct=5, long_duration_s=120.0,
                             short_duration_s=3.0)
        workload = generate_microbenchmark(params, seed=77)
        setup = ExperimentSetup(model="ev", scheduler=scheduler,
                                seed=77, check_final=False)
        started = time.perf_counter()
        result, report, _c = run_workload(workload, setup)
        elapsed = time.perf_counter() - started
        assert report.committed == 300
        assert elapsed < 60.0, f"{scheduler} took {elapsed:.1f}s"
        order = reconstruct_serial_order(result)
        assert len(order) == 300
        assert validate_serial_order(
            result, {i: "OFF" for i in range(25)}, order)

    def test_high_contention_single_device(self):
        """100 routines hammering 2 devices: the worst case for the
        wait machinery; everything must still commit in lineage order."""
        params = MicroParams(routines=100, concurrency=10, devices=2,
                             commands_per_routine=1.0,
                             long_routine_pct=0, short_duration_s=1.0)
        workload = generate_microbenchmark(params, seed=78)
        setup = ExperimentSetup(model="ev", scheduler="timeline",
                                seed=78, check_final=False)
        result, report, _c = run_workload(workload, setup)
        assert report.committed == 100
        assert validate_serial_order(result, {0: "OFF", 1: "OFF"})

    def test_wide_factory(self):
        from repro.workloads.scenarios import factory_scenario
        workload = factory_scenario(seed=79, stages=80,
                                    routines_per_stage=2)
        setup = ExperimentSetup(model="ev", check_final=False)
        result, report, _c = run_workload(workload, setup)
        assert report.committed == 160
        assert report.parallelism_mean > 20


class TestDetectionEventPlacement:
    def test_failure_before_restart_in_timeline(self):
        from repro.metrics.serialization import place_detection_events
        from tests.conftest import Home, routine

        home = Home(model="ev", n_devices=2)
        home.submit(routine("a", [(0, "ON", 1.0), (1, "ON", 6.0)]),
                    when=0.0)
        home.detect_failure(0, at=3.0)
        home.detect_restart(0, at=4.0)
        result = home.run()
        order = reconstruct_serial_order(result)
        timeline = place_detection_events(result, order)
        kinds = [entry[0] for entry in timeline]
        assert kinds.index("failure") < kinds.index("restart")

    def test_event_for_untouched_device_placed_anywhere_valid(self):
        from repro.metrics.serialization import place_detection_events
        from tests.conftest import Home, routine

        home = Home(model="ev", n_devices=3)
        home.submit(routine("a", [(0, "ON", 1.0)]), when=0.0)
        home.detect_failure(2, at=0.5)
        result = home.run()
        timeline = place_detection_events(
            result, reconstruct_serial_order(result))
        assert ("failure", 2, 0.5) in timeline
