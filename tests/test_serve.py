"""Service mode: pacing, admission control, SLO metrics, the hub.

The soak/load tier lives in tests/test_serve_soak.py; this file is
the fast unit tier — fake-clock pacing, exact fairness ratios,
backpressure semantics, drain behavior and the pump-vs-run report
equivalence that anchors service mode to batch mode.
"""

import json
import math
import urllib.request

import pytest

from repro.errors import AdmissionRejected, SafeHomeError, ServeError
from repro.hub.safehome import SafeHome
from repro.serve import (AdmissionControl, RealTimeDriver, RollingWindow,
                         ServeConfig, ServeHub, StatusServer,
                         build_serve_home, parse_speedup, quantile_summary,
                         run_closed_loop)
from repro.sim.engine import Simulator
from repro.workloads.fleet_mix import cooling_scenario


class FakeClock:
    """Deterministic monotonic clock whose sleep() advances it."""

    def __init__(self) -> None:
        self.t = 0.0

    def monotonic(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        assert seconds >= 0
        self.t += seconds


# -- pacing --------------------------------------------------------------------


class TestRealTimeDriver:
    def test_virtual_paced_drains_without_sleeping(self):
        sim = Simulator()
        fired = []
        for at in (1.0, 2.0, 30.0):
            sim.call_at(at, fired.append, at)
        clock = FakeClock()
        driver = RealTimeDriver(sim, speedup=math.inf,
                                monotonic=clock.monotonic,
                                sleep=clock.sleep)
        assert driver.pump() == 3
        assert fired == [1.0, 2.0, 30.0]
        assert clock.t == 0.0          # no sleeps, no wall coupling
        assert driver.behind_s() == 0.0
        with pytest.raises(ServeError):
            driver.target()

    def test_finite_speedup_paces_against_wall_clock(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, 1.0)
        sim.call_at(2.0, fired.append, 2.0)
        clock = FakeClock()
        driver = RealTimeDriver(sim, speedup=2.0, poll_s=1.0,
                                monotonic=clock.monotonic,
                                sleep=clock.sleep)
        driver.start()
        # Wall t=0 has earned no virtual time: nothing fires, and the
        # idle sleep stops exactly at the first event's due time.
        assert driver.pump() == 0
        assert fired == []
        assert clock.t == pytest.approx(0.5)   # (1.0 virtual) / 2x
        assert driver.pump() == 1
        assert fired == [1.0]
        assert sim.now == pytest.approx(1.0)
        assert driver.pump() == 0              # 2.0 not due yet
        assert clock.t == pytest.approx(1.0)
        assert driver.pump() == 1
        assert fired == [1.0, 2.0]
        assert driver.clock_regressions == 0

    def test_idle_real_time_pump_advances_clock_and_sleeps_poll(self):
        sim = Simulator()
        clock = FakeClock()
        driver = RealTimeDriver(sim, speedup=10.0, poll_s=0.25,
                                monotonic=clock.monotonic,
                                sleep=clock.sleep)
        driver.start()
        clock.t = 1.0                  # 10 virtual seconds earned
        assert driver.pump() == 0
        assert sim.now == pytest.approx(10.0)  # clock tracks wall
        assert clock.t == pytest.approx(1.25)  # then one poll sleep
        assert driver.behind_s() == pytest.approx(0.25)

    def test_speedup_must_be_positive(self):
        with pytest.raises(ServeError):
            RealTimeDriver(Simulator(), speedup=0)
        with pytest.raises(ServeError):
            RealTimeDriver(Simulator(), speedup=-5)

    def test_parse_speedup(self):
        assert math.isinf(parse_speedup("inf"))
        assert math.isinf(parse_speedup("virtual"))
        assert parse_speedup("100") == 100.0
        assert parse_speedup(" 2.5 ") == 2.5
        with pytest.raises(ServeError):
            parse_speedup("fast")
        with pytest.raises(ServeError):
            parse_speedup("-1")


# -- admission control ---------------------------------------------------------


class TestAdmission:
    def test_full_queue_rejects_with_growing_retry_after(self):
        control = AdmissionControl(capacity=2, retry_after_s=0.1)
        control.register("a", weight=1)
        control.register("b", weight=2)
        control.offer("a", "t1")
        control.offer("a", "t2")
        with pytest.raises(AdmissionRejected) as excinfo:
            control.offer("a", "t3")
        assert excinfo.value.tenant == "a"
        # Backlog of 2 behind the rejected request, weight 1.
        assert excinfo.value.retry_after_s == pytest.approx(0.3)
        # A heavier tenant drains faster: its hint is proportionally
        # shorter for the same backlog.
        control.offer("b", "t1")
        control.offer("b", "t2")
        with pytest.raises(AdmissionRejected) as excinfo_b:
            control.offer("b", "t3")
        assert excinfo_b.value.retry_after_s == \
            pytest.approx(excinfo.value.retry_after_s / 2)
        state = control.tenant("a")
        assert state.offered == 3 and state.rejected == 1
        assert state.max_depth == 2

    def test_weighted_fair_dequeue_holds_exact_ratios(self):
        control = AdmissionControl(capacity=100)
        control.register("heavy", weight=3)
        control.register("light", weight=1)
        for i in range(40):
            control.offer("heavy", f"h{i}")
            control.offer("light", f"l{i}")
        batch = control.drain(16)
        heavy = sum(1 for t in batch if t.startswith("h"))
        light = sum(1 for t in batch if t.startswith("l"))
        # Deficit round-robin under saturation: exactly weight ratios.
        assert (heavy, light) == (12, 4)
        # FIFO within a tenant.
        assert [t for t in batch if t.startswith("h")][:3] == \
            ["h0", "h1", "h2"]

    def test_idle_tenant_forfeits_credit(self):
        control = AdmissionControl(capacity=100)
        control.register("a", weight=4)
        control.register("b", weight=1)
        # 'a' idles for what would be many rounds...
        for i in range(8):
            control.offer("b", f"b{i}")
        control.drain(8)
        assert control.tenant("a").credit == 0.0
        # ...then bursts: it gets its weight share, not banked credit.
        for i in range(20):
            control.offer("a", f"a{i}")
            control.offer("b", f"b{i}")
        batch = control.drain(10)
        assert sum(1 for t in batch if t.startswith("a")) == 8
        assert sum(1 for t in batch if t.startswith("b")) == 2

    def test_registration_and_bounds_validation(self):
        control = AdmissionControl(capacity=4)
        control.register("a")
        with pytest.raises(ServeError):
            control.register("a")              # duplicate
        with pytest.raises(ServeError):
            control.register("zero", weight=0)
        with pytest.raises(ServeError):
            control.tenant("ghost")
        with pytest.raises(ServeError):
            AdmissionControl(capacity=0)

    def test_drop_all_empties_queues_and_counts(self):
        control = AdmissionControl(capacity=8)
        control.register("a")
        for i in range(5):
            control.offer("a", i)
        dropped = control.drop_all()
        assert dropped == [0, 1, 2, 3, 4]
        assert control.total_depth() == 0
        assert control.tenant("a").dropped == 5


# -- SLO metrics ---------------------------------------------------------------


class TestRollingWindow:
    def test_eviction_keeps_only_the_window(self):
        window = RollingWindow(window_s=10.0, buckets=2, resolution=1e-3)
        window.add(0.0, 1.0)
        window.add(12.0, 9.0)          # evicts the t=0 bucket
        merged = window.merged(12.0)
        assert merged.count == 1
        summary = window.snapshot(12.0)
        assert summary["n"] == 1
        assert summary["p50"] == pytest.approx(9.0, abs=1e-3)
        assert summary["window_s"] == 10.0

    def test_quantile_summary_shape(self):
        window = RollingWindow(window_s=60.0)
        for value in range(1, 101):
            window.add(1.0, value / 100.0)
        summary = quantile_summary(window.merged(1.0))
        assert set(summary) == {"n", "p50", "p95", "p99"}
        assert summary["n"] == 100
        assert summary["p50"] == pytest.approx(0.5, abs=2e-3)
        assert summary["p95"] == pytest.approx(0.95, abs=2e-3)

    def test_validation(self):
        with pytest.raises(ServeError):
            RollingWindow(window_s=0)
        with pytest.raises(ServeError):
            RollingWindow(window_s=1.0, buckets=0)


# -- the hub -------------------------------------------------------------------


def small_hub(tenants=2, **config_kwargs):
    hub = ServeHub(build_serve_home(seed=5),
                   ServeConfig(**config_kwargs))
    for i in range(tenants):
        hub.add_tenant(f"t{i}")
    return hub


class TestServeHub:
    def test_pump_then_finalize_matches_batch_run(self):
        def build(seed):
            home = SafeHome(visibility="ev", seed=seed)
            home.load_workload(cooling_scenario(seed=seed))
            return home

        batch = build(5)
        batch_result = batch.run()

        served = build(5)
        # Pump in arbitrary slices, the way a serve loop would.
        while served.sim.pending_events:
            served.pump(until=served.sim.now + 37.0)
        served_result = served.finalize_service()

        def rows(result):
            return [(run.routine.name, run.status.name,
                     round(run.finish_time, 9)) for run in result.runs]

        assert rows(served_result) == rows(batch_result)
        assert served.report(check_final=True).row() == \
            batch.report(check_final=True).row()

    def test_pump_refuses_durable_homes(self):
        durable = SafeHome(visibility="ev", durability=True)
        with pytest.raises(SafeHomeError, match="journal"):
            durable.pump()
        with pytest.raises(ServeError, match="durable"):
            ServeHub(durable)

    def test_submit_requires_registered_tenant_and_known_home(self):
        hub = small_hub()
        with pytest.raises(ServeError):
            hub.submit("ghost", "cool-living")
        with pytest.raises(ServeError):
            hub.add_tenant("t9", home="no-such-home")

    def test_serve_until_idle_runs_everything_inline(self):
        hub = small_hub()
        tickets = [hub.submit("t0", "cool-living"),
                   hub.submit("t1", "night-setback")]
        hub.serve_until_idle()
        assert all(t.status == "committed" for t in tickets)
        assert all(t.done.is_set() for t in tickets)
        assert all(t.latency_v > 0 for t in tickets)
        status = hub.status()
        assert status["state"] == "stopped"
        assert status["config"]["speedup"] is None   # inf -> JSON null
        assert status["in_flight"] == 0
        assert status["latency"]["total"]["n"] == 2

    def test_graceful_drain_finishes_in_flight_and_rejects_new(self):
        hub = small_hub()
        hub.start()
        tickets = [hub.submit("t0", "cool-living") for _ in range(5)]
        hub.shutdown(drain=True, timeout=30.0)
        assert all(t.status == "committed" for t in tickets)
        with pytest.raises(AdmissionRejected) as excinfo:
            hub.submit("t0", "cool-living")
        assert excinfo.value.retry_after_s is None   # do-not-retry
        # Idempotent.
        hub.shutdown(drain=True)

    def test_hard_shutdown_drops_queued_tickets(self):
        hub = small_hub()
        tickets = [hub.submit("t0", "cool-living") for _ in range(3)]
        hub.shutdown(drain=False)
        assert all(t.status == "dropped" for t in tickets)
        assert all(t.done.is_set() for t in tickets)
        assert hub.admission.tenant("t0").dropped == 3
        assert hub.status()["queue"]["depth"] == 0

    def test_closed_loop_respects_weights_under_saturation(self):
        # Saturate a tiny admit batch with weighted tenants: admitted
        # counts track the 3:1 weights while both stay backlogged.
        hub = ServeHub(build_serve_home(seed=2),
                       ServeConfig(admit_batch=4))
        hub.add_tenant("heavy", weight=3)
        hub.add_tenant("light", weight=1)
        for _ in range(24):
            hub.submit("heavy", "cool-living")
            hub.submit("light", "cool-living")
        batch = hub._admit_batch()
        assert batch == 4
        counts = {s.name: s.admitted for s in hub.admission.tenants()}
        assert counts == {"heavy": 3, "light": 1}
        hub.serve_until_idle()
        assert all(s.depth == 0 for s in hub.admission.tenants())

    def test_status_shape_is_deterministic_json(self):
        hub = small_hub()
        run_closed_loop(hub, per_tenant=5, seed=3)
        payload = json.loads(hub.status_json())
        assert set(payload) == {"state", "config", "homes", "queue",
                                "tenants", "latency", "in_flight"}
        assert "wall" not in payload
        wall = json.loads(hub.status_json(include_wall=True))["wall"]
        assert set(wall) == {"elapsed_s", "behind_s",
                             "clock_regressions"}
        assert wall["clock_regressions"] == 0

    def test_final_report_has_no_wall_fields(self):
        hub = small_hub()
        run_closed_loop(hub, per_tenant=4, seed=1)
        report = json.loads(hub.final_report_json())
        assert set(report) == {"config", "homes", "tenants", "latency",
                               "virtual_makespan"}
        assert "wall" not in report
        for row in report["homes"].values():
            assert "serial_order" in row

    def test_hub_requires_homes(self):
        with pytest.raises(ServeError):
            ServeHub({})


class TestStatusServer:
    def test_http_status_endpoint(self):
        hub = small_hub()
        run_closed_loop(hub, per_tenant=3, seed=9)
        server = StatusServer(hub, port=0)
        try:
            server.start()
        except OSError:
            pytest.skip("cannot bind a loopback socket here")
        try:
            url = f"http://127.0.0.1:{server.port}/status"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                payload = json.loads(response.read())
            assert payload["state"] == "stopped"
            assert "wall" in payload
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5)
        finally:
            server.stop()
