"""Tests for the optimistic controller (paper future work, §4.1 fn 3)."""

import pytest

from repro.core.controller import RoutineStatus
from repro.metrics.congruence import final_state_serializable
from tests.conftest import Home, routine


class TestOCCHappyPath:
    def test_conflict_free_routines_all_commit_without_waiting(self):
        home = Home(model="occ", n_devices=4)
        runs = [home.submit(routine(f"r{i}", [(i, "ON", 5.0)]), when=0.0)
                for i in range(4)]
        home.run()
        assert all(r.status is RoutineStatus.COMMITTED for r in runs)
        assert all(r.wait_time == 0.0 for r in runs)
        assert home.controller.validation_aborts == 0

    def test_sequential_conflicting_routines_commit(self):
        home = Home(model="occ", n_devices=1)
        a = home.submit(routine("a", [(0, "A", 1.0)]), when=0.0)
        b = home.submit(routine("b", [(0, "B", 1.0)]), when=10.0)
        result = home.run()
        assert a.status is RoutineStatus.COMMITTED
        assert b.status is RoutineStatus.COMMITTED
        assert result.end_state[0] == "B"


class TestOCCValidation:
    def test_second_finisher_aborts_on_conflict(self):
        home = Home(model="occ", n_devices=2)
        # Disable retries to observe the raw validation outcome.
        home.controller.max_retries = 0
        slow = home.submit(routine("slow", [(0, "S", 1.0),
                                            (1, "S", 10.0)]), when=0.0)
        fast = home.submit(routine("fast", [(0, "F", 1.0)]), when=0.2)
        result = home.run()
        # fast commits first; slow's footprint overlaps -> slow aborts.
        assert fast.status is RoutineStatus.COMMITTED
        assert slow.status is RoutineStatus.ABORTED
        assert "validation conflict" in slow.abort_reason
        assert final_state_serializable(result, home.initial)

    def test_rollback_restores_committed_value_not_own_write(self):
        home = Home(model="occ", n_devices=2)
        home.controller.max_retries = 0
        slow = home.submit(routine("slow", [(0, "S", 1.0),
                                            (1, "S", 10.0)]), when=0.0)
        fast = home.submit(routine("fast", [(0, "F", 1.0)]), when=2.0)
        result = home.run()
        assert slow.status is RoutineStatus.ABORTED
        # fast's committed F is physically latest on device 0 and must
        # survive slow's rollback.
        assert result.end_state[0] == "F"

    def test_retry_eventually_commits(self):
        home = Home(model="occ", n_devices=2)
        slow = home.submit(routine("slow", [(0, "S", 1.0),
                                            (1, "S", 8.0)]), when=0.0)
        fast = home.submit(routine("fast", [(0, "F", 1.0)]), when=0.2)
        result = home.run()
        # The retried copy of slow runs alone and commits.
        retried = [r for r in result.runs
                   if r.name == "slow" and r is not slow]
        assert retried and retried[0].status is RoutineStatus.COMMITTED
        assert result.end_state[0] == "S"
        assert final_state_serializable(result, home.initial)

    def test_retry_budget_bounded(self):
        home = Home(model="occ", n_devices=1)
        home.controller.max_retries = 2
        # A stream of short conflicting routines keeps invalidating the
        # long one; it must stop retrying after the budget.
        long = home.submit(routine("long", [(0, "L", 30.0)]), when=0.0)
        for index in range(12):
            home.submit(routine(f"s{index}", [(0, f"V{index}", 1.0)]),
                        when=1.0 + index * 9.0)
        result = home.run()
        copies = [r for r in result.runs if r.name == "long"]
        assert len(copies) <= 1 + 2  # original + max_retries


class TestOCCVsEV:
    def test_occ_faster_when_conflict_free(self):
        def mean_latency(model):
            home = Home(model=model, n_devices=6)
            runs = [home.submit(routine(f"r{i}", [(i, "ON", 5.0)]),
                                when=0.0) for i in range(6)]
            home.run()
            return sum(r.latency for r in runs) / len(runs)

        # No conflicts: both are lock-free-fast; OCC must not be slower.
        assert mean_latency("occ") <= mean_latency("ev") * 1.05

    def test_occ_aborts_under_contention_ev_does_not(self):
        def run_contended(model):
            home = Home(model=model, n_devices=2)
            if model == "occ":
                home.controller.max_retries = 0
            for i in range(6):
                home.submit(routine(
                    f"r{i}", [(i % 2, f"V{i}", 4.0),
                              ((i + 1) % 2, f"W{i}", 4.0)]),
                    when=i * 0.5)
            return home.run()

        occ = run_contended("occ")
        ev = run_contended("ev")
        assert len(occ.aborted) > 0       # disruptive undo happened
        assert len(ev.aborted) == 0       # pessimistic locking avoided it
        # Both still end serially equivalent.
        assert final_state_serializable(
            occ, {0: "OFF", 1: "OFF"})
