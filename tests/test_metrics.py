"""Tests for statistics helpers and congruence checkers."""

import pytest

from repro.metrics.congruence import (end_state_of_order,
                                      serial_end_state_exists)
from repro.metrics.stats import (cdf_points, mean, median,
                                 normalized_swap_distance, percentile,
                                 summarize, swap_distance)


class TestStats:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_percentile_bounds(self):
        data = list(range(1, 11))
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 10
        assert percentile(data, 50) == 5.5

    def test_percentile_single(self):
        assert percentile([7.0], 90) == 7.0

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_median(self):
        assert median([3, 1, 2]) == 2

    def test_cdf_points(self):
        points = cdf_points([1, 2, 3, 4], points=4)
        assert points[0] == (1, 0.25)
        assert points[-1] == (4, 1.0)
        assert cdf_points([]) == []

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["n"] == 4
        assert summary["mean"] == 2.5
        assert summary["max"] == 4.0

    def test_swap_distance_identity(self):
        assert swap_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_swap_distance_reversal(self):
        assert swap_distance([3, 2, 1], [1, 2, 3]) == 3

    def test_swap_distance_ignores_missing(self):
        assert swap_distance([1, 9, 2], [2, 1]) == 1

    def test_normalized_swap_distance(self):
        assert normalized_swap_distance([3, 2, 1], [1, 2, 3]) == 1.0
        assert normalized_swap_distance([1, 2, 3], [1, 2, 3]) == 0.0
        assert normalized_swap_distance([1], [1]) == 0.0


class TestSerialEquivalence:
    """The final-incongruence checker, both implementations."""

    def test_end_state_of_order(self):
        writes = {1: {0: "ON"}, 2: {0: "OFF", 1: "ON"}}
        assert end_state_of_order([1, 2], writes, {0: "X", 1: "X"}) == \
            {0: "OFF", 1: "ON"}
        assert end_state_of_order([2, 1], writes, {0: "X", 1: "X"}) == \
            {0: "ON", 1: "ON"}

    def test_exhaustive_finds_order(self):
        writes = {1: {0: "ON"}, 2: {0: "OFF"}}
        initial = {0: "X"}
        assert serial_end_state_exists({0: "ON"}, writes, initial)
        assert serial_end_state_exists({0: "OFF"}, writes, initial)
        assert not serial_end_state_exists({0: "X"}, writes, initial)

    def test_detects_mixed_state(self):
        # all-ON vs all-OFF on two devices: a mixed end state is not
        # serially equivalent.
        writes = {1: {0: "ON", 1: "ON"}, 2: {0: "OFF", 1: "OFF"}}
        initial = {0: "OFF", 1: "OFF"}
        assert not serial_end_state_exists({0: "ON", 1: "OFF"},
                                           writes, initial)
        assert serial_end_state_exists({0: "ON", 1: "ON"},
                                       writes, initial)

    def test_untouched_device_must_keep_initial(self):
        writes = {1: {0: "ON"}}
        assert not serial_end_state_exists({0: "ON", 1: "CHANGED"},
                                           writes, {0: "OFF", 1: "KEEP"})
        assert serial_end_state_exists({0: "ON", 1: "KEEP"},
                                       writes, {0: "OFF", 1: "KEEP"})

    def test_large_n_uses_last_writer_search(self):
        # 12 routines -> 12! permutations is infeasible; the designated
        # last-writer search must still answer correctly.
        writes = {i: {0: f"V{i}"} for i in range(12)}
        initial = {0: "X"}
        assert serial_end_state_exists({0: "V7"}, writes, initial,
                                       exhaustive_limit=4)
        assert not serial_end_state_exists({0: "nope"}, writes, initial,
                                           exhaustive_limit=4)

    def test_last_writer_search_detects_cross_device_conflict(self):
        # R1 last on device 0 requires R2 before R1; R2 last on device 1
        # requires R1 before R2 -> cycle -> not serializable.
        writes = {1: {0: "W1", 1: "X1"}, 2: {0: "X2", 1: "W2"}}
        initial = {0: "I", 1: "I"}
        observed = {0: "W1", 1: "W2"}
        assert serial_end_state_exists(observed, writes, initial,
                                       exhaustive_limit=0) == \
            serial_end_state_exists(observed, writes, initial,
                                    exhaustive_limit=10)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_implementations_agree_on_random_cases(self, n):
        import random
        rng = random.Random(42)
        for _ in range(60):
            writes = {
                rid: {dev: rng.choice("AB")
                      for dev in rng.sample(range(3),
                                            rng.randint(1, 3))}
                for rid in range(n)
            }
            initial = {dev: "I" for dev in range(3)}
            observed = {dev: rng.choice(["A", "B", "I"])
                        for dev in range(3)}
            brute = serial_end_state_exists(observed, writes, initial,
                                            exhaustive_limit=n)
            clever = serial_end_state_exists(observed, writes, initial,
                                             exhaustive_limit=0)
            assert brute == clever, (writes, observed)
