"""Unit tests for the policy-agnostic execution core
(`repro.core.execution`): lock table, command-DAG planner, device FIFO.
"""

import pytest

from repro.core.command import Command
from repro.core.execution.locks import (GLOBAL, LockMode, LockTable,
                                        lease_deadline)
from repro.core.execution.plan import CommandPlan, NodeState
from repro.core.execution.queues import DeviceQueues


def cmd(device, duration=1.0, read=False, must=True):
    return Command(device_id=device, value=None if read else "ON",
                   duration=duration, is_read=read, must=must)


class TestLockTable:
    def test_exclusive_blocks_and_fifo_grants(self):
        table = LockTable()
        assert table.acquire(1, 7, now=0.0)
        assert not table.acquire(2, 7, now=1.0)
        assert not table.acquire(3, 7, now=2.0)
        granted = table.release(1, 7, now=5.0)
        # FIFO: routine 2 first, and 3 stays queued behind it.
        assert [g.owner for g in granted] == [2]
        assert table.holds(2, 7)
        assert table.waiter_count(7) == 1
        assert table.wait_seconds[2] == pytest.approx(4.0)

    def test_shared_locks_coexist_and_block_writer(self):
        table = LockTable()
        assert table.acquire(1, 5, mode=LockMode.SHARED)
        assert table.acquire(2, 5, mode=LockMode.SHARED)
        assert not table.acquire(3, 5, mode=LockMode.EXCLUSIVE)
        # A later reader must not overtake the queued writer (FIFO).
        assert not table.acquire(4, 5, mode=LockMode.SHARED)
        table.release(1, 5)
        granted = table.release(2, 5)
        assert [g.owner for g in granted] == [3]

    def test_shared_readers_granted_together(self):
        table = LockTable()
        assert table.acquire(1, 5)
        assert not table.acquire(2, 5, mode=LockMode.SHARED)
        assert not table.acquire(3, 5, mode=LockMode.SHARED)
        granted = table.release(1, 5)
        # The whole compatible FIFO prefix is promoted at once.
        assert [g.owner for g in granted] == [2, 3]

    def test_reacquire_is_idempotent(self):
        table = LockTable()
        assert table.acquire(1, GLOBAL)
        assert table.acquire(1, GLOBAL)
        assert table.holdings(1) == [GLOBAL]

    def test_forget_drops_holds_and_waits(self):
        table = LockTable()
        table.acquire(1, 5)
        table.acquire(2, 6)
        assert not table.acquire(1, 6)       # 1 waits on 6
        assert not table.acquire(3, 5)       # 3 waits on 5
        granted = table.forget(1, now=2.0)
        assert [g.owner for g in granted] == [3]
        assert table.waiting_on(1) == []
        assert table.holdings(1) == []

    def test_wait_for_graph_cycle_and_victim(self):
        table = LockTable()
        # Incremental acquisition in opposite orders: classic deadlock.
        table.acquire(1, 10)
        table.acquire(2, 11)
        assert not table.acquire(1, 11)
        assert table.find_cycle() is None    # 1→2 only: no cycle yet
        assert not table.acquire(2, 10)
        edges = table.wait_for_edges()
        assert (1, 2) in edges and (2, 1) in edges
        victim = table.detect_deadlock()
        assert victim == 2                   # deterministic: youngest
        # Aborting the victim unblocks the survivor.
        granted = table.forget(victim)
        assert [g.owner for g in granted] == [1]
        assert table.detect_deadlock() is None

    def test_fifo_waiters_are_part_of_blocking_relation(self):
        table = LockTable()
        table.acquire(1, 5)
        table.acquire(2, 5)
        table.acquire(3, 5)
        assert (3, 2) in table.wait_for_edges()

    def test_lease_expiry_reported_only_when_contended(self):
        table = LockTable()
        deadline = lease_deadline(0.0, duration=10.0, leniency=1.1,
                                  slack=1.0)
        assert deadline == pytest.approx(12.0)
        table.acquire(1, 5, now=0.0, deadline=deadline)
        assert table.overdue(now=20.0) == []     # no waiter: harmless
        table.acquire(2, 5, now=1.0)
        overdue = table.overdue(now=20.0)
        assert [g.owner for g in overdue] == [1]
        assert table.overdue(now=11.0) == []     # not yet expired


class TestCommandPlan:
    def test_serial_strategy_is_a_chain(self):
        plan = CommandPlan([cmd(1), cmd(2), cmd(3)], strategy="serial")
        assert plan.ready_indexes() == [0]
        assert plan.width() == 1
        assert plan.mark_issued(0) == 0.0
        assert plan.mark_done(0) == [1]

    def test_parallel_disjoint_devices_all_ready(self):
        plan = CommandPlan([cmd(1), cmd(2), cmd(3)], strategy="parallel")
        assert plan.ready_indexes() == [0, 1, 2]
        assert plan.width() == 3

    def test_parallel_same_device_keeps_program_order(self):
        plan = CommandPlan([cmd(1), cmd(1), cmd(2)], strategy="parallel")
        assert plan.ready_indexes() == [0, 2]
        plan.mark_issued(0)
        assert plan.mark_done(0) == [1]

    def test_parallel_read_is_a_barrier(self):
        plan = CommandPlan([cmd(1), cmd(2, read=True), cmd(3)],
                           strategy="parallel")
        # The read waits for everything before it; device 3 waits for
        # the read (a condition gates what follows).
        assert plan.ready_indexes() == [0]
        plan.mark_issued(0)
        assert plan.mark_done(0) == [1]
        plan.mark_issued(1)
        assert plan.mark_done(1) == [2]

    def test_lifecycle_and_lock_wait(self):
        plan = CommandPlan([cmd(1), cmd(1)], strategy="parallel", now=2.0)
        assert plan.nodes[0].ready_at == 2.0
        assert plan.mark_issued(0, now=5.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            plan.mark_issued(1)              # still pending
        plan.mark_done(0, now=6.0)
        assert plan.nodes[1].state is NodeState.READY
        assert not plan.all_done()
        plan.mark_issued(1, now=6.0)
        plan.mark_done(1, now=7.0)
        assert plan.all_done()

    def test_critical_path(self):
        plan = CommandPlan([cmd(1, 5.0), cmd(2, 2.0), cmd(2, 2.0)],
                           strategy="parallel")
        assert plan.critical_path_s() == pytest.approx(5.0)
        serial = CommandPlan([cmd(1, 5.0), cmd(2, 2.0), cmd(2, 2.0)],
                             strategy="serial")
        assert serial.critical_path_s() == pytest.approx(9.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            CommandPlan([cmd(1)], strategy="speculative")


class TestDeviceQueues:
    def test_fifo_one_in_flight_per_device(self):
        queues = DeviceQueues()
        fired = []
        assert queues.submit(1, lambda: fired.append("a") or True)
        assert not queues.submit(1, lambda: fired.append("b") or True)
        assert fired == ["a"]
        assert queues.depth(1) == 1
        queues.complete(1)
        assert fired == ["a", "b"]
        assert queues.busy(1)
        queues.complete(1)
        assert not queues.busy(1)

    def test_moot_thunks_do_not_hold_the_device(self):
        queues = DeviceQueues()
        fired = []
        assert queues.submit(1, lambda: fired.append("a") or True)
        queues.submit(1, lambda: False)              # routine died queued
        queues.submit(1, lambda: fired.append("c") or True)
        queues.complete(1)
        assert fired == ["a", "c"]

    def test_distinct_devices_independent(self):
        queues = DeviceQueues()
        fired = []
        queues.submit(1, lambda: fired.append(1) or True)
        queues.submit(2, lambda: fired.append(2) or True)
        assert fired == [1, 2]
