"""Scenario-synthesis engine: spec round-trips, replay determinism,
fleet/backend byte-identity and the adversarial hunt contract."""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.runner import ExperimentSetup, run_workload
from repro.fleet import FleetConfig, FleetEngine
from repro.metrics.congruence import temporary_incongruence_events
from repro.sim.random import RandomStreams
from repro.workloads.fleet_mix import (FLEET_SCENARIOS, build_fleet_workload,
                                       scenario_for_home)
from repro.workloads.synth import (HUNT_MODELS, SynthSpec, compile_spec,
                                   corpus_to_json, hunt, hunt_corpus,
                                   is_synth_scenario, mutate_spec,
                                   random_spec)

# A compact strategy over the interesting knobs; the rest stay at their
# defaults so generated workloads stay small enough for a backend grid.
spec_strategy = st.builds(
    SynthSpec,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    devices=st.integers(min_value=3, max_value=8),
    routines=st.integers(min_value=4, max_value=12),
    fanout_mean=st.floats(min_value=1.5, max_value=4.0),
    contention_alpha=st.floats(min_value=0.0, max_value=2.0),
    trigger_open_pct=st.sampled_from([50.0, 100.0]),
    streams=st.integers(min_value=1, max_value=3),
)


class TestSynthSpec:
    def test_json_round_trip(self):
        spec = SynthSpec(seed=7, devices=5, routines=9,
                         contention_alpha=1.3, long_pct=25.0)
        assert SynthSpec.from_json(spec.to_json()) == spec

    def test_encode_decode_round_trip_defaults_elided(self):
        spec = SynthSpec(seed=5, devices=5, routines=8)
        name = spec.encode()
        assert name == "synth:seed=5;devices=5;routines=8"
        assert is_synth_scenario(name)
        assert SynthSpec.decode(name) == spec
        # Comma-free by construction: fleet --mix splits on commas.
        assert "," not in SynthSpec(
            seed=1, device_pool=("light", "ac")).encode()

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            SynthSpec.decode("synth:devices=not-a-number")
        with pytest.raises(ValueError):
            SynthSpec.decode("synth:unknown_knob=3")
        with pytest.raises(ValueError):
            SynthSpec.decode("morning")

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthSpec(devices=0)
        with pytest.raises(ValueError):
            SynthSpec(long_pct=120.0)
        with pytest.raises(ValueError):
            SynthSpec(device_pool=("warp-drive",))

    @given(spec=spec_strategy)
    def test_compile_is_pure(self, spec):
        """Same spec ⇒ same workload, and the spec survives in meta."""
        first = compile_spec(spec)
        second = compile_spec(spec)
        assert first.devices == second.devices
        assert first.meta["synth_spec"] == spec.to_dict()
        assert [(r.name, at) for r, at in first.arrivals] == \
            [(r.name, at) for r, at in second.arrivals]
        assert first.routine_count == spec.routines
        for routine in (r for r, _at in first.arrivals):
            # Contiguity: no device appears twice in one routine.
            ids = [c.device_id for c in routine.commands]
            assert len(set(ids)) == len(ids)


def _report_json(scenario_name, seed=0, model="ev"):
    workload = build_fleet_workload(scenario_name, seed=seed)
    setup = ExperimentSetup(model=model, seed=seed, check_final=False)
    result, report, _controller = run_workload(workload, setup)
    row = dict(report.row())
    row["end_state"] = {str(k): v for k, v in
                       sorted(result.end_state.items())}
    return json.dumps(row, sort_keys=True, default=repr)


class TestReplayDeterminism:
    @given(spec=spec_strategy)
    @settings(max_examples=5)
    def test_scenario_replays_byte_identically_from_spec(self, spec):
        """encode → decode → compile → run reproduces the original."""
        name = spec.encode()
        assert _report_json(name, seed=spec.seed) == \
            _report_json(SynthSpec.decode(name).encode(), seed=spec.seed)
        # And a second process-independent compile of the same object.
        direct = compile_spec(spec)
        via_name = compile_spec(SynthSpec.decode(name))
        assert [(r.name, at) for r, at in direct.arrivals] == \
            [(r.name, at) for r, at in via_name.arrivals]

    @given(spec=spec_strategy)
    @settings(max_examples=3)
    def test_fleet_backend_grid_byte_identical(self, spec):
        """A synthesized fleet is a pure function of its config: the
        serial, thread and process backends — across chunk sizes —
        produce byte-identical JSON."""
        name = spec.encode()
        base = FleetConfig(homes=4, seed=17, scenario=name,
                           check_final=False)
        reference = FleetEngine(base).run().to_json(per_home=True)
        for backend, chunk in (("thread", 1), ("thread", 0),
                               ("process", 2), ("process", 0)):
            config = dataclasses.replace(base, backend=backend,
                                         workers=2, chunk=chunk)
            assert FleetEngine(config).run().to_json(per_home=True) \
                == reference, (backend, chunk)


class TestFleetIntegration:
    def test_scenario_for_home_accepts_synth_names(self):
        name = SynthSpec(seed=3, devices=4, routines=6).encode()
        assert scenario_for_home(0, scenario=name) == name
        assert scenario_for_home(1, scenario="mix",
                                 mix=("cooling", name)) == name

    def test_scenario_for_home_rejects_bad_synth_names(self):
        with pytest.raises(ValueError):
            scenario_for_home(0, scenario="synth:devices=0")
        with pytest.raises(ValueError, match="synth"):
            scenario_for_home(0, scenario="no-such-scenario")

    def test_build_fleet_workload_routes_synth(self):
        spec = SynthSpec(seed=3, devices=4, routines=6)
        workload = build_fleet_workload(spec.encode(), seed=99)
        assert workload.meta["synth_spec"] == spec.to_dict()
        assert workload.meta["seed"] == 99      # per-home split seed


class TestHunt:
    def test_hunt_is_deterministic(self):
        kwargs = dict(models=("wv",), objective="incongruence",
                      seed=3, budget=6)
        first = corpus_to_json(hunt_corpus(**kwargs))
        second = corpus_to_json(hunt_corpus(**kwargs))
        assert first == second

    def test_mutation_stays_in_bounds(self):
        rng = RandomStreams(seed=4).stream("mutate")
        spec = random_spec(rng, seed=11)
        for _ in range(50):
            spec = mutate_spec(spec, rng)
            # __post_init__ validation would have raised on any
            # out-of-range knob; spot-check the coupled pair too.
            assert spec.fanout_max >= 1
            assert spec.devices >= 1

    def test_hunted_wv_beats_every_hand_written_scenario(self):
        """Acceptance bar: the adversarial search finds more WV
        incongruence pressure than any hand-written scenario."""
        hand_written = {}
        for scenario in sorted(FLEET_SCENARIOS):
            workload = build_fleet_workload(scenario, seed=0)
            setup = ExperimentSetup(model="wv", seed=0,
                                    check_final=False)
            result, _report, _controller = run_workload(workload, setup)
            hand_written[scenario] = \
                temporary_incongruence_events(result)

        outcome = hunt("wv", objective="incongruence", seed=0,
                       budget=25)
        assert outcome["oracle_violations"] == 0
        best = outcome["best"]["score"]
        assert best > max(hand_written.values()), hand_written

    def test_corpus_covers_all_models_and_is_oracle_clean(self):
        corpus = hunt_corpus(HUNT_MODELS, objective="incongruence",
                             seed=1, budget=3)
        assert sorted(corpus["models"]) == sorted(HUNT_MODELS)
        assert corpus["oracle_violations"] == 0
        for model in HUNT_MODELS:
            entry = corpus["models"][model]
            assert is_synth_scenario(entry["best"]["scenario"])
            # Every best spec replays: decode must succeed.
            SynthSpec.decode(entry["best"]["scenario"])
