"""Tests for the trigger-driven Routine Dispatcher."""

import pytest

from repro.core.command import Command
from repro.core.controller import ControllerConfig, RoutineStatus
from repro.core.routine import Routine
from repro.hub.dispatcher import Dispatcher
from repro.hub.routine_bank import RoutineBank
from tests.conftest import Home


def make_stack(model="ev", n_devices=3, execution="serial"):
    home = Home(model=model, n_devices=n_devices,
                config=ControllerConfig(execution=execution))
    bank = RoutineBank()
    dispatcher = Dispatcher(home.sim, home.registry, bank,
                            home.controller)
    return home, bank, dispatcher


def simple(name, device=0, value="ON", duration=1.0):
    return Routine(name=name, commands=[
        Command(device_id=device, value=value, duration=duration)])


class TestTimedTriggers:
    def test_every_fires_count_times(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("tick"))
        dispatcher.every("tick", period=10.0, start_at=0.0, count=3)
        home.run()
        assert len(dispatcher.firings) == 3
        assert [round(f.time) for f in dispatcher.firings] == [0, 10, 20]
        assert all(f.run.status is RoutineStatus.COMMITTED
                   for f in dispatcher.firings)

    def test_every_validates_period(self):
        _home, bank, dispatcher = make_stack()
        bank.register(simple("tick"))
        with pytest.raises(ValueError):
            dispatcher.every("tick", period=0.0)

    def test_disarm_stops_firing(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("tick"))
        dispatcher.every("tick", period=5.0, start_at=0.0, count=10)
        home.sim.call_at(12.0, dispatcher.disarm)
        home.run()
        assert len(dispatcher.firings) == 3  # t=0, 5, 10

    def test_timed_routines_respect_concurrency_control(self):
        """The paper's Rtrash/Rgoodnight conflict: a timed routine and a
        user routine sharing the garage are serialized under EV."""
        home, bank, dispatcher = make_stack(n_devices=3)
        # The garage (device 0) is held for the trash can's whole trip;
        # per-device commands must be contiguous, so the hold is
        # expressed as one long OPEN command followed by CLOSED.
        trash = Routine(name="trash", commands=[
            Command(device_id=0, value="OPEN", duration=34.0),
            Command(device_id=0, value="CLOSED", duration=2.0),
            Command(device_id=1, value="DRIVEWAY", duration=1.0),
        ])
        goodnight = Routine(name="goodnight", commands=[
            Command(device_id=2, value="OFF", duration=1.0),
            Command(device_id=0, value="CLOSED", duration=2.0),
        ])
        bank.register(trash)
        bank.register(goodnight)
        dispatcher.every("trash", period=1000.0, start_at=0.0, count=1)
        dispatcher.invoke("goodnight")
        result = home.run()
        # Serial equivalence: the garage is CLOSED at the end and the
        # goodnight close never interleaved into trash's open window.
        assert result.end_state[0] == "CLOSED"
        from repro.metrics.congruence import final_state_serializable
        assert final_state_serializable(result, home.initial)


class TestStateTriggers:
    def test_when_state_fires_on_matching_write(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("welcome", device=1, value="ON"))
        dispatcher.when_state("plug-0", "UNLOCKED", "welcome")
        home.submit(simple("unlock", device=0, value="UNLOCKED"))
        home.run()
        assert [f.routine_name for f in dispatcher.firings] == ["welcome"]
        assert home.registry.get(1).state == "ON"

    def test_when_state_once_only(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("welcome", device=1))
        dispatcher.when_state("plug-0", "X", "welcome", once=True)
        home.submit(simple("a", device=0, value="X"), when=0.0)
        home.submit(simple("b", device=0, value="Y"), when=5.0)
        home.submit(simple("c", device=0, value="X"), when=10.0)
        home.run()
        assert len(dispatcher.firings) == 1

    def test_when_state_repeating(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("welcome", device=1))
        dispatcher.when_state("plug-0", "X", "welcome", once=False)
        home.submit(simple("a", device=0, value="X"), when=0.0)
        home.submit(simple("b", device=0, value="Y"), when=5.0)
        home.submit(simple("c", device=0, value="X"), when=10.0)
        home.run()
        assert len(dispatcher.firings) == 2


class TestTriggerKindsAcrossStrategies:
    """All three trigger kinds interleaving, under both execution
    strategies, including disarm while routines are mid-flight."""

    def build(self, execution, model="ev"):
        home, bank, dispatcher = make_stack(model=model, n_devices=4,
                                            execution=execution)
        # A wide routine the timer fires repeatedly...
        bank.register(Routine(name="sweep", commands=[
            Command(device_id=0, value="ON", duration=3.0),
            Command(device_id=1, value="ON", duration=3.0),
        ]))
        # ...a state-triggered follow-up...
        bank.register(simple("follow", device=2, value="SEEN",
                             duration=1.0))
        # ...and an event-triggered (failure-detection) alert.
        bank.register(simple("alert", device=3, value="ALERT",
                             duration=0.5))
        dispatcher.every("sweep", period=10.0, start_at=0.0, count=4)
        dispatcher.when_state("plug-1", "ON", "follow", once=False)
        dispatcher.on_detection("failure", "alert")
        return home, bank, dispatcher

    @pytest.mark.parametrize("execution", ["serial", "parallel"])
    def test_kinds_interleave(self, execution):
        home, _bank, dispatcher = self.build(execution)
        home.detect_failure(3, at=12.0)
        home.detect_restart(3, at=13.0)
        home.run()
        kinds = {f.kind for f in dispatcher.firings}
        assert kinds == {"timed", "state", "event"}
        assert len(dispatcher.firings_of_kind("timed")) == 4
        # Each sweep writes plug-1 → ON, so every sweep fires follow.
        assert len(dispatcher.firings_of_kind("state")) == 4
        assert len(dispatcher.firings_of_kind("event")) == 1
        # Trigger-initiated routines flow through the controller: they
        # commit under the active strategy.
        assert all(f.run.status is RoutineStatus.COMMITTED
                   for f in dispatcher.firings
                   if f.routine_name == "sweep")

    @pytest.mark.parametrize("execution", ["serial", "parallel"])
    def test_disarm_mid_flight(self, execution):
        home, _bank, dispatcher = self.build(execution)
        # Disarm while the second sweep is still executing (t=10..16):
        # no further timed/state firings, but the in-flight routine
        # finishes under concurrency control.
        home.sim.call_at(11.0, dispatcher.disarm)
        home.run()
        timed = dispatcher.firings_of_kind("timed")
        assert len(timed) == 2
        assert all(f.run.status is RoutineStatus.COMMITTED
                   for f in timed)

    @pytest.mark.parametrize("execution", ["serial", "parallel"])
    def test_parallel_sweep_still_serialized_with_user_routine(
            self, execution):
        home, _bank, dispatcher = self.build(execution)
        # A user routine conflicting on device 0 arrives mid-sweep.
        user = home.submit(simple("user-op", device=0, value="OFF",
                                  duration=1.0), when=1.0)
        home.run()
        assert user.status is RoutineStatus.COMMITTED
        from repro.metrics.congruence import final_state_serializable
        from repro.core.controller import RunResult
        result = RunResult.from_controller(home.controller)
        assert final_state_serializable(result, home.initial)


class TestDetectionTriggers:
    def test_failure_trigger(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("alert", device=1, value="ALERT"))
        dispatcher.on_detection("failure", "alert")
        home.submit(simple("work", device=0, duration=10.0))
        home.detect_failure(2, at=2.0)
        home.run()
        assert [f.routine_name for f in dispatcher.firings] == ["alert"]
        assert home.registry.get(1).state == "ALERT"

    def test_restart_trigger_device_filtered(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("rejoice", device=1, value="OK"))
        dispatcher.on_detection("restart", "rejoice", device_id=2)
        home.submit(simple("work", device=0, duration=30.0))
        home.detect_failure(2, at=2.0)
        home.detect_restart(2, at=5.0)
        home.run()
        assert len(dispatcher.firings) == 1

    def test_invalid_kind(self):
        _home, _bank, dispatcher = make_stack()
        with pytest.raises(ValueError):
            dispatcher.on_detection("explosion", "r")
