"""Tests for the trigger-driven Routine Dispatcher."""

import pytest

from repro.core.command import Command
from repro.core.controller import RoutineStatus
from repro.core.routine import Routine
from repro.hub.dispatcher import Dispatcher
from repro.hub.routine_bank import RoutineBank
from tests.conftest import Home


def make_stack(model="ev", n_devices=3):
    home = Home(model=model, n_devices=n_devices)
    bank = RoutineBank()
    dispatcher = Dispatcher(home.sim, home.registry, bank,
                            home.controller)
    return home, bank, dispatcher


def simple(name, device=0, value="ON", duration=1.0):
    return Routine(name=name, commands=[
        Command(device_id=device, value=value, duration=duration)])


class TestTimedTriggers:
    def test_every_fires_count_times(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("tick"))
        dispatcher.every("tick", period=10.0, start_at=0.0, count=3)
        home.run()
        assert len(dispatcher.firings) == 3
        assert [round(f.time) for f in dispatcher.firings] == [0, 10, 20]
        assert all(f.run.status is RoutineStatus.COMMITTED
                   for f in dispatcher.firings)

    def test_every_validates_period(self):
        _home, bank, dispatcher = make_stack()
        bank.register(simple("tick"))
        with pytest.raises(ValueError):
            dispatcher.every("tick", period=0.0)

    def test_disarm_stops_firing(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("tick"))
        dispatcher.every("tick", period=5.0, start_at=0.0, count=10)
        home.sim.call_at(12.0, dispatcher.disarm)
        home.run()
        assert len(dispatcher.firings) == 3  # t=0, 5, 10

    def test_timed_routines_respect_concurrency_control(self):
        """The paper's Rtrash/Rgoodnight conflict: a timed routine and a
        user routine sharing the garage are serialized under EV."""
        home, bank, dispatcher = make_stack(n_devices=3)
        # The garage (device 0) is held for the trash can's whole trip;
        # per-device commands must be contiguous, so the hold is
        # expressed as one long OPEN command followed by CLOSED.
        trash = Routine(name="trash", commands=[
            Command(device_id=0, value="OPEN", duration=34.0),
            Command(device_id=0, value="CLOSED", duration=2.0),
            Command(device_id=1, value="DRIVEWAY", duration=1.0),
        ])
        goodnight = Routine(name="goodnight", commands=[
            Command(device_id=2, value="OFF", duration=1.0),
            Command(device_id=0, value="CLOSED", duration=2.0),
        ])
        bank.register(trash)
        bank.register(goodnight)
        dispatcher.every("trash", period=1000.0, start_at=0.0, count=1)
        dispatcher.invoke("goodnight")
        result = home.run()
        # Serial equivalence: the garage is CLOSED at the end and the
        # goodnight close never interleaved into trash's open window.
        assert result.end_state[0] == "CLOSED"
        from repro.metrics.congruence import final_state_serializable
        assert final_state_serializable(result, home.initial)


class TestStateTriggers:
    def test_when_state_fires_on_matching_write(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("welcome", device=1, value="ON"))
        dispatcher.when_state("plug-0", "UNLOCKED", "welcome")
        home.submit(simple("unlock", device=0, value="UNLOCKED"))
        home.run()
        assert [f.routine_name for f in dispatcher.firings] == ["welcome"]
        assert home.registry.get(1).state == "ON"

    def test_when_state_once_only(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("welcome", device=1))
        dispatcher.when_state("plug-0", "X", "welcome", once=True)
        home.submit(simple("a", device=0, value="X"), when=0.0)
        home.submit(simple("b", device=0, value="Y"), when=5.0)
        home.submit(simple("c", device=0, value="X"), when=10.0)
        home.run()
        assert len(dispatcher.firings) == 1

    def test_when_state_repeating(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("welcome", device=1))
        dispatcher.when_state("plug-0", "X", "welcome", once=False)
        home.submit(simple("a", device=0, value="X"), when=0.0)
        home.submit(simple("b", device=0, value="Y"), when=5.0)
        home.submit(simple("c", device=0, value="X"), when=10.0)
        home.run()
        assert len(dispatcher.firings) == 2


class TestDetectionTriggers:
    def test_failure_trigger(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("alert", device=1, value="ALERT"))
        dispatcher.on_detection("failure", "alert")
        home.submit(simple("work", device=0, duration=10.0))
        home.detect_failure(2, at=2.0)
        home.run()
        assert [f.routine_name for f in dispatcher.firings] == ["alert"]
        assert home.registry.get(1).state == "ALERT"

    def test_restart_trigger_device_filtered(self):
        home, bank, dispatcher = make_stack()
        bank.register(simple("rejoice", device=1, value="OK"))
        dispatcher.on_detection("restart", "rejoice", device_id=2)
        home.submit(simple("work", device=0, duration=30.0))
        home.detect_failure(2, at=2.0)
        home.detect_restart(2, at=5.0)
        home.run()
        assert len(dispatcher.firings) == 1

    def test_invalid_kind(self):
        _home, _bank, dispatcher = make_stack()
        with pytest.raises(ValueError):
            dispatcher.on_detection("explosion", "r")
