"""Documentation is part of tier-1: executable examples, generated CLI
reference, and resolvable intra-repo links.

* Every fenced ``>>>`` example in README.md and docs/*.md runs under
  pytest (doc rot fails the suite, not just scripts/check.sh).
* docs/cli.md must match what scripts/gen_cli_docs.py generates from
  the live argparse tree.
* Every intra-repo markdown link and anchor must resolve.
"""

import doctest
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
MARKDOWN = sorted([REPO_ROOT / "README.md",
                   *(REPO_ROOT / "docs").glob("*.md")])
sys.path.insert(0, str(REPO_ROOT / "scripts"))


@pytest.mark.parametrize("path", MARKDOWN,
                         ids=[p.name for p in MARKDOWN])
def test_markdown_examples_execute(path):
    results = doctest.testfile(str(path), module_relative=False,
                               verbose=False)
    assert results.failed == 0, \
        f"{path.name}: {results.failed} of {results.attempted} " \
        "doctest examples failed"


def test_readme_and_key_docs_have_examples():
    """The executable-docs gate only means something while the docs
    actually contain examples."""
    for name in ("README.md", "docs/visibility-models.md",
                 "docs/durability.md"):
        text = (REPO_ROOT / name).read_text()
        assert ">>>" in text, f"{name} lost its executable examples"


def test_cli_docs_match_parser():
    import gen_cli_docs

    generated = gen_cli_docs.render()
    committed = (REPO_ROOT / "docs" / "cli.md").read_text()
    assert committed == generated, \
        "docs/cli.md is out of date; regenerate with: " \
        "PYTHONPATH=src python scripts/gen_cli_docs.py"


def test_intra_repo_markdown_links_resolve():
    import check_links

    errors = []
    for path in check_links.markdown_files():
        errors.extend(check_links.check_file(path))
    assert not errors, "\n".join(errors)


def test_link_checker_catches_breakage(tmp_path):
    """The link gate only means something while the checker works."""
    import check_links

    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](no-such-file.md) and "
                   "[anchor](#no-such-heading)\n\n# Real heading\n")
    errors = check_links.check_file(bad)
    assert len(errors) == 2
