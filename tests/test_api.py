"""The ``repro.api`` facade: keyword-only constructors, pinned
deprecation shims, and coverage of every public entry point the docs
examples import."""

import warnings

import pytest

import repro.api as api
from repro.api import (POSITIONAL_DEPRECATION, FleetConfig, FleetEngine,
                       FleetPlan, SafeHome, ServeHub, SynthSpec)


def test_all_exports_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_facades_subclass_the_real_types():
    from repro.fleet.control.plan import FleetPlan as RealPlan
    from repro.fleet.engine import FleetEngine as RealEngine
    from repro.hub.safehome import SafeHome as RealHome
    from repro.serve.hub import ServeHub as RealHub
    from repro.workloads.synth.spec import SynthSpec as RealSpec

    assert issubclass(SafeHome, RealHome)
    assert issubclass(FleetEngine, RealEngine)
    assert issubclass(ServeHub, RealHub)
    assert issubclass(SynthSpec, RealSpec)
    assert issubclass(FleetPlan, RealPlan)


@pytest.mark.parametrize("build", [
    lambda: SafeHome("ev"),
    lambda: FleetEngine(FleetConfig(homes=2)),
    lambda: ServeHub({"home-0": SafeHome(visibility="ev")}),
    lambda: SynthSpec(3),
    lambda: FleetPlan({"homes": 2}),
], ids=["SafeHome", "FleetEngine", "ServeHub", "SynthSpec", "FleetPlan"])
def test_positional_construction_warns_with_pinned_message(build):
    with pytest.warns(DeprecationWarning) as captured:
        build()
    messages = [str(w.message) for w in captured]
    assert any(POSITIONAL_DEPRECATION in m for m in messages), messages


def test_keyword_construction_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        SafeHome(visibility="ev", durability=True)
        FleetEngine(config=FleetConfig(homes=2))
        ServeHub(homes={"home-0": SafeHome(visibility="ev")})
        SynthSpec(seed=3, devices=4)
        FleetPlan(fleet={"homes": 2, "seed": 1})


def test_the_deprecation_message_is_pinned():
    # Downstream pipelines filter on this exact text; changing it is a
    # breaking API change, not a wording tweak.
    assert POSITIONAL_DEPRECATION == (
        "positional arguments to repro.api constructors are deprecated; "
        "pass keyword arguments")


def test_facade_objects_behave_like_the_real_ones():
    plan = FleetPlan(fleet={"homes": 4, "seed": 42})
    assert plan.version == "repro-fleet-plan/1"
    assert FleetConfig.from_plan(plan.fleet).homes == 4

    home = SafeHome(visibility="ev", durability=True, seed=7)
    assert home.wal is not None

    engine = FleetEngine(config=FleetConfig(homes=2, seed=1))
    result = engine.run()
    assert len(result.rows) == 2
