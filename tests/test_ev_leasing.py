"""Tests for lock leasing (§4.1): pre-leases, post-leases, the
dirty-read guard, ablation flags, and revocation."""

import pytest

from repro.core.command import Command
from repro.core.controller import ControllerConfig, RoutineStatus
from repro.core.routine import Routine
from tests.conftest import Home, routine


def make_home(pre=True, post=True, scheduler="timeline", n_devices=3,
              **kwargs):
    config = ControllerConfig(pre_lease=pre, post_lease=post)
    return Home(model="ev", scheduler=scheduler, n_devices=n_devices,
                config=config, **kwargs)


class TestPostLease:
    def test_post_lease_pipelines(self):
        home = make_home()
        # r1 releases device 0 after 1 s but keeps running on device 1.
        r1 = home.submit(routine("r1", [(0, "A", 1.0), (1, "B", 30.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "C", 1.0)]), when=0.1)
        home.run()
        assert r2.finish_time < r1.finish_time
        assert home.controller.scheduler_stats["post_leases"] >= 1

    def test_post_lease_disabled_blocks(self):
        home = make_home(post=False)
        r1 = home.submit(routine("r1", [(0, "A", 1.0), (1, "B", 30.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "C", 1.0)]), when=0.1)
        home.run()
        # r2 must wait for r1 to finish entirely.
        assert r2.start_time >= r1.finish_time

    def test_dirty_read_blocked_until_writer_finishes(self):
        home = make_home()
        writer = home.submit(routine("w", [(0, "ON", 1.0),
                                           (1, "B", 20.0)]), when=0.0)
        reader = Routine(name="reader", commands=[
            Command(device_id=0, is_read=True, duration=0.5)])
        r2 = home.submit(reader, when=0.1)
        home.run()
        # The reader may not consume the writer's uncommitted write.
        assert r2.start_time >= writer.finish_time
        assert r2.executions[0].observed == "ON"


class TestPreLease:
    def test_pre_lease_lets_short_routine_jump_ahead(self):
        home = make_home(scheduler="timeline")
        # r1 touches device 1 late (after 30 s on device 0); r2 only
        # needs device 1 briefly: TL pre-leases device 1 to r2.
        r1 = home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 1.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(1, "C", 1.0)]), when=0.1)
        result = home.run()
        assert r2.finish_time < r1.finish_time
        assert home.controller.scheduler_stats["pre_leases"] >= 1
        # Serialization: r2 before r1 on device 1 -> r1's write is last.
        assert result.end_state[1] == "B"

    def test_pre_lease_disabled_appends(self):
        home = make_home(pre=False, scheduler="timeline")
        r1 = home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 1.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(1, "C", 1.0)]), when=0.1)
        result = home.run()
        assert home.controller.scheduler_stats["pre_leases"] == 0
        assert result.end_state[1] == "C"  # r2 serialized after r1

    def test_contradictory_lease_rejected(self):
        """If an earlier placement already serialized r2 after r1, a
        pre-lease that would put r2 before r1 is disallowed (§4.1)."""
        home = make_home(scheduler="timeline")
        # r1: device 0 now, device 1 in 30 s.  r2 wants device 0 then
        # device 1 — placing r2's device-1 access into the gap before
        # r1's would contradict r2-after-r1 on device 0.
        r1 = home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 1.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "C", 1.0), (1, "D", 1.0)]),
                         when=0.1)
        result = home.run()
        assert result.end_state == {0: "C", 1: "D", 2: "OFF"}
        home.controller.table.verify_serialize_before()

    def test_lease_revocation_aborts_overholder(self):
        # Estimates are scaled down 95% -> r2's pre-leased access
        # overstays its revocation deadline while r1 is waiting behind.
        config = ControllerConfig(estimate_error=0.0, revoke_slack_s=0.0,
                                  leniency_factor=1.1)
        home = Home(model="ev", scheduler="timeline", n_devices=2,
                    config=config)

        # r2 wildly under-estimates its duration (claims 1 s, runs 20 s),
        # so its pre-leased lock overstays the revocation deadline while
        # r1 waits behind it.
        controller = home.controller
        real = controller.estimate_duration
        controller.estimate_duration = lambda run, request: (
            1.0 if run.name == "r2" else real(run, request))

        r1 = home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 2.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(1, "C", 20.0)]), when=0.1)
        home.run()
        # r2 jumped ahead on device 1 via pre-lease but overheld.
        assert r2.status is RoutineStatus.ABORTED
        assert "revoked" in r2.abort_reason
        assert r1.status is RoutineStatus.COMMITTED


class TestLeasingLatencyAblation:
    def test_leasing_reduces_latency(self):
        """Both-on beats both-off on a contended workload (Fig 15a)."""
        def total_latency(pre, post):
            home = make_home(pre=pre, post=post, n_devices=3)
            plan = [
                ("a", [(0, "A", 2.0), (1, "B", 10.0)], 0.0),
                ("b", [(0, "C", 2.0)], 0.1),
                ("c", [(1, "D", 2.0), (2, "E", 10.0)], 0.2),
                ("d", [(2, "F", 2.0)], 0.3),
            ]
            runs = [home.submit(routine(name, steps), when=at)
                    for name, steps, at in plan]
            home.run()
            return sum(run.latency for run in runs)

        assert total_latency(True, True) < total_latency(False, False)
