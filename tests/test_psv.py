"""Behavioral tests for Partitioned Strict Visibility."""

from repro.core.controller import RoutineStatus
from tests.conftest import Home, routine


class TestPSVConcurrency:
    def test_disjoint_routines_run_concurrently(self):
        home = Home(model="psv", n_devices=2)
        a = home.submit(routine("a", [(0, "ON", 5.0)]), when=0.0)
        b = home.submit(routine("b", [(1, "ON", 5.0)]), when=0.0)
        home.run()
        assert b.start_time < a.finish_time  # overlapped

    def test_conflicting_routines_serialized(self):
        home = Home(model="psv", n_devices=2)
        a = home.submit(routine("a", [(0, "ON", 5.0), (1, "ON", 5.0)]),
                        when=0.0)
        b = home.submit(routine("b", [(1, "OFF", 5.0)]), when=0.1)
        home.run()
        assert b.start_time >= a.finish_time

    def test_no_overtaking_through_a_blocked_routine(self):
        # c conflicts with b (queued); it must not start before b even
        # though c itself does not conflict with the running a.
        home = Home(model="psv", n_devices=3)
        a = home.submit(routine("a", [(0, "ON", 10.0)]), when=0.0)
        b = home.submit(routine("b", [(0, "OFF", 1.0), (2, "ON", 1.0)]),
                        when=0.1)
        c = home.submit(routine("c", [(2, "OFF", 1.0)]), when=0.2)
        home.run()
        assert b.start_time >= a.finish_time
        assert c.start_time >= b.start_time

    def test_end_state_serial_equivalent(self):
        home = Home(model="psv", n_devices=3)
        home.submit(routine("on", [(0, "ON", 1.0), (1, "ON", 1.0),
                                   (2, "ON", 1.0)]), when=0.0)
        home.submit(routine("off", [(0, "OFF", 1.0), (1, "OFF", 1.0),
                                    (2, "OFF", 1.0)]), when=0.5)
        result = home.run()
        assert len(set(result.end_state.values())) == 1


class TestPSVFailures:
    def test_failure_mid_touch_aborts(self):
        home = Home(model="psv", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 10.0), (1, "ON", 1.0)]),
                        when=0.0)
        home.detect_failure(0, at=3.0)  # during device 0's command
        home.run()
        assert r.status is RoutineStatus.ABORTED

    def test_failure_after_last_touch_aborts_if_still_down_at_finish(self):
        home = Home(model="psv", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 1.0), (1, "ON", 10.0)]),
                        when=0.0)
        home.detect_failure(0, at=5.0)  # after device 0's last touch
        home.run()
        # Condition 3*: still failed at finish point -> abort.
        assert r.status is RoutineStatus.ABORTED
        assert "finish point" in r.abort_reason

    def test_failure_after_last_touch_ok_if_recovered(self):
        home = Home(model="psv", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 1.0), (1, "ON", 10.0)]),
                        when=0.0)
        home.detect_failure(0, at=5.0)
        home.detect_restart(0, at=8.0)  # recovered before finish
        home.run()
        assert r.status is RoutineStatus.COMMITTED

    def test_fail_and_restart_before_first_touch_ok(self):
        home = Home(model="psv", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 10.0), (1, "ON", 1.0)]),
                        when=0.0)
        home.detect_failure(1, at=2.0)
        home.detect_restart(1, at=5.0)  # back before r touches device 1
        home.run()
        assert r.status is RoutineStatus.COMMITTED

    def test_still_failed_at_first_touch_aborts(self):
        home = Home(model="psv", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 10.0), (1, "ON", 1.0)]),
                        when=0.0)
        home.detect_failure(1, at=2.0)  # never restarts
        home.run()
        assert r.status is RoutineStatus.ABORTED
