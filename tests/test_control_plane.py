"""Fleet control plane: plans, cohorts, supervision, canaries, ops log.

The design contract under test: a ``repro-fleet-plan/1`` file is the
*only* input, and two applications of the same plan are byte-identical
— ops log and result JSON — whatever the fleet did in between (crashes,
restarts, migrations, rollbacks).
"""

import json
import pickle

import pytest

from repro.errors import PlanError, RecoveryError
from repro.fleet import FleetConfig, HomeSpec
from repro.fleet.control import (CanarySpec, Cohort, ControlLoop,
                                 ControlProgram, FleetPlan, HomeDirective,
                                 MigrationStep, OpsLog, SupervisionPolicy,
                                 apply_plan, assign_cohorts, load_plan)

BASE_FLEET = {"homes": 8, "seed": 42, "model": "wv", "scenario": "mix"}


def _plan(**kwargs):
    defaults = dict(
        fleet=dict(BASE_FLEET),
        cohorts=[Cohort.from_dict({"name": "migrators", "fraction": 0.25,
                                   "overrides": {"crashes": 2}})],
        migrations=[MigrationStep(cohort="migrators", to_model="ev",
                                  at_s=40.0)])
    defaults.update(kwargs)
    return FleetPlan(**defaults)


# -- plan schema and validation ------------------------------------------------


def test_plan_round_trips_through_json():
    plan = _plan(canary=CanarySpec(cohort="migrators"))
    again = FleetPlan.from_json(plan.to_json())
    assert again.to_dict() == plan.to_dict()
    assert again.version == "repro-fleet-plan/1"


@pytest.mark.parametrize("mutate, match", [
    (lambda d: d.update(version="repro-fleet-plan/2"), "version"),
    (lambda d: d["fleet"].update(homez=3), "unknown"),
    (lambda d: d["fleet"].update(transport="carrier-pigeon"), "transport"),
    (lambda d: d["cohorts"].append(
        {"name": "migrators", "fraction": 0.1}), "duplicate"),
    (lambda d: d["cohorts"].append(
        {"name": "stable", "fraction": 0.1}), "reserved"),
    (lambda d: d["cohorts"].append(
        {"name": "rest", "fraction": 0.9}), "fraction"),
    (lambda d: d["migrations"].append(
        {"cohort": "ghosts", "to_model": "ev", "at_s": 1.0}), "ghosts"),
    (lambda d: d["migrations"].append(
        {"cohort": "migrators", "to_model": "occ", "at_s": 9.0}),
     "one migration"),
    (lambda d: d.update(canary={"cohort": "ghosts"}), "ghosts"),
    (lambda d: d.update(supervision={"max_restarts": 0}), "max_restarts"),
    (lambda d: d.update(supervision={"restartz": 1}), "unknown"),
])
def test_invalid_plans_are_rejected(mutate, match):
    data = _plan().to_dict()
    mutate(data)
    with pytest.raises(PlanError, match=match):
        FleetPlan.from_dict(data)


def test_migration_to_unknown_model_rejected():
    with pytest.raises((PlanError, ValueError)):
        _plan(migrations=[MigrationStep(cohort="migrators",
                                        to_model="psychic", at_s=1.0)])


def test_load_plan_from_file(tmp_path):
    path = tmp_path / "plan.json"
    _plan().save(str(path))
    assert load_plan(str(path)).to_dict() == _plan().to_dict()


# -- config round-trips --------------------------------------------------------


def test_fleet_config_plan_round_trip():
    config = FleetConfig(homes=20, seed=7, model="gsv", crashes=1)
    assert FleetConfig.from_plan(config.to_plan()) == config


def test_fleet_config_from_plan_rejects_unknown_keys():
    with pytest.raises(PlanError, match="unknown"):
        FleetConfig.from_plan({"homes": 5, "sheduler": "fcfs"})


def test_fleet_config_overrides_beat_plan_values():
    config = FleetConfig.from_plan({"homes": 5, "model": "wv"},
                                   homes=9, scheduler="fcfs")
    assert (config.homes, config.model, config.scheduler) == \
        (9, "wv", "fcfs")


def test_home_spec_plan_round_trip():
    spec = HomeSpec(home_id=3, scenario="cooling", seed=99, model="ev")
    assert HomeSpec.from_plan(spec.to_plan()) == spec
    with pytest.raises(PlanError):
        HomeSpec.from_plan({"home_id": 1, "scenario": "x", "seed": 0,
                            "warp_drive": True})


# -- cohort assignment ---------------------------------------------------------


def test_cohort_assignment_deterministic_disjoint_and_sized():
    plan = _plan(migrations=[], cohorts=[
        Cohort.from_dict({"name": "a", "fraction": 0.25}),
        Cohort.from_dict({"name": "b", "fraction": 0.25})])
    first = assign_cohorts(plan, homes=20, seed=42)
    assert first == assign_cohorts(plan, homes=20, seed=42)
    assert sorted(first) == list(range(20))
    by_cohort = {}
    for home, cohort in first.items():
        by_cohort.setdefault(cohort, set()).add(home)
    assert len(by_cohort["a"]) == 5
    assert len(by_cohort["b"]) == 5
    assert len(by_cohort["stable"]) == 10
    assert assign_cohorts(plan, homes=20, seed=43) != first


def test_cohort_assignment_is_order_independent():
    cohorts = [Cohort.from_dict({"name": "a", "fraction": 0.25}),
               Cohort.from_dict({"name": "b", "fraction": 0.25})]
    forward = assign_cohorts(_plan(migrations=[], cohorts=cohorts),
                             homes=16, seed=1)
    backward = assign_cohorts(_plan(migrations=[], cohorts=cohorts[::-1]),
                              homes=16, seed=1)
    assert forward == backward


# -- supervision policy --------------------------------------------------------


def test_backoff_grows_geometrically_and_caps():
    policy = SupervisionPolicy(backoff_base_s=0.5, backoff_factor=2.0,
                               backoff_cap_s=3.0)
    assert [policy.backoff_s(n) for n in (1, 2, 3, 4, 5)] == \
        [0.5, 1.0, 2.0, 3.0, 3.0]


def test_control_program_pickles_for_process_workers():
    program = ControlProgram(
        directives=(HomeDirective(home_id=0, cohort="stable", model="ev",
                                  scheduler="timeline", execution="serial",
                                  crashes=0, recovery="replay"),),
        supervision=SupervisionPolicy())
    clone = pickle.loads(pickle.dumps(program))
    assert clone.directive_for(0).model == "ev"
    assert clone.directive_for(99) is None


# -- ops log -------------------------------------------------------------------


def test_opslog_sequences_centrally_and_round_trips(tmp_path):
    log = OpsLog()
    log.record("plan-loaded", homes=4)
    log.extend([{"op": "crash", "home": 2, "seq": 999}])
    assert [entry["seq"] for entry in log] == [0, 1]
    assert log.counts() == {"plan-loaded": 1, "crash": 1}
    path = tmp_path / "ops.jsonl"
    log.save(str(path))
    assert OpsLog.load(str(path)).to_jsonl() == log.to_jsonl()
    for line in log.to_jsonl().splitlines():
        assert line == json.dumps(json.loads(line), sort_keys=True)


# -- end-to-end: apply, supervision, canary ------------------------------------


def test_apply_plan_is_byte_deterministic_and_oracle_clean():
    plan = _plan(canary=CanarySpec(cohort="migrators"))
    first = ControlLoop(plan).run()
    second = ControlLoop(plan).run()
    assert first.ops.to_jsonl() == second.ops.to_jsonl()
    assert first.to_json(per_home=True) == second.to_json(per_home=True)
    assert first.ok
    assert not first.rolled_back
    # Every migrator cohort member migrated and survived its crashes.
    migrators = [row for row in first.rows
                 if row["cohort"] == "migrators"]
    assert migrators
    assert all(row["migrated"] == "ev" for row in migrators)
    assert all(row["model"] == "ev" for row in migrators)
    assert sum(row["hub_crashes"] for row in migrators) > 0
    assert sum(row["restarts"] for row in migrators) > 0
    # Supervision ops journaled with the policy's virtual backoff.
    restarts = [e for e in first.ops if e["op"] == "restart"]
    assert restarts
    assert all(e["backoff_s"] ==
               plan.supervision.backoff_s(e["attempt"])
               for e in restarts)
    assert all(e["healthy"] for e in first.ops if e["op"] == "probe")


def test_canary_rollback_is_deterministic_and_restores_stable():
    # max_p95_ratio=0 regresses any canary with nonzero latency, so the
    # rollback path runs deterministically every time.
    plan = _plan(
        cohorts=[Cohort.from_dict({"name": "canary", "fraction": 0.25,
                                   "overrides": {"model": "gsv"}})],
        migrations=[],
        canary=CanarySpec(cohort="canary", max_p95_ratio=0.0))
    first = ControlLoop(plan).run()
    second = ControlLoop(plan).run()
    assert first.ops.to_jsonl() == second.ops.to_jsonl()
    assert first.to_json(per_home=True) == second.to_json(per_home=True)
    assert first.canary["regressed"]
    assert first.rolled_back
    # Post-rollback, the canary homes run the *stable* settings.
    canary_rows = [row for row in first.rows
                   if row["cohort"] == "canary"]
    assert canary_rows
    assert all(row["model"] == BASE_FLEET["model"] for row in canary_rows)
    phases = [e["phase"] for e in first.ops
              if e["op"] == "pool-spawned"]
    assert phases == ["fleet", "rollback"]


def test_rollback_respawn_reclamps_worker_count():
    """Regression: the rollback spawn must re-query the pool size for
    its own (smaller) chunk plan, not reuse the fleet-wide clamp."""
    plan = _plan(
        fleet=dict(BASE_FLEET, homes=12, workers=6, chunk=1),
        cohorts=[Cohort.from_dict({"name": "canary", "fraction": 0.25})],
        migrations=[],
        canary=CanarySpec(cohort="canary", max_p95_ratio=0.0))
    result = ControlLoop(plan).run()
    assert result.rolled_back
    spawns = {e["phase"]: e for e in result.ops
              if e["op"] == "pool-spawned"}
    assert spawns["fleet"]["workers"] == 6
    assert spawns["rollback"]["homes"] == 3
    assert spawns["rollback"]["workers"] == 3   # re-clamped, not 6


def test_restart_storm_abandons_after_budget(monkeypatch):
    """When recovery keeps failing, supervision gives up after
    max_restarts and the home is counted failed, not retried forever."""
    from repro.hub.safehome import SafeHome

    def always_fails(self, mode=None):
        raise RecoveryError("synthetic recovery failure")

    monkeypatch.setattr(SafeHome, "recover", always_fails)
    plan = _plan(
        migrations=[],
        supervision=SupervisionPolicy(max_restarts=2))
    result = ControlLoop(plan).run()
    failed = [row for row in result.rows if row.get("failed")]
    assert failed
    assert not result.ok
    assert all(row["routines"] == 0 for row in failed)
    assert all(row["cohort"] == "migrators" for row in failed)
    abandons = [e for e in result.ops if e["op"] == "abandon"]
    assert len(abandons) == len(failed)
    # Each abandoned home burned exactly its restart budget.
    attempts = [e for e in result.ops if e["op"] == "restart-failed"]
    assert len(attempts) == 2 * len(failed)
    # Failed homes are excluded from cohort aggregates.
    migrators = [row for row in result.rows
                 if row["cohort"] == "migrators"]
    if "migrators" in result.cohorts:
        assert result.cohorts["migrators"]["homes"] == \
            len(migrators) - len(failed)


def test_control_loop_rejects_unsupported_fleet_settings():
    with pytest.raises(PlanError, match="transport"):
        ControlLoop(_plan(fleet=dict(BASE_FLEET, transport="shm")))
    with pytest.raises(PlanError, match="aggregate"):
        ControlLoop(_plan(fleet=dict(BASE_FLEET, aggregate="stream")))


def test_apply_plan_convenience_saves_ops_log(tmp_path):
    plan_path = tmp_path / "plan.json"
    _plan().save(str(plan_path))
    ops_path = tmp_path / "ops.jsonl"
    result = apply_plan(str(plan_path), ops_path=str(ops_path))
    assert result.ok
    assert OpsLog.load(str(ops_path)).to_jsonl() == result.ops.to_jsonl()


# -- CLI: --plan / --dump-plan / fleet-ops -------------------------------------


def _cli(*argv):
    from repro.cli import main

    return main(list(argv))


def test_cli_dump_plan_prints_dataclass_defaults(capsys):
    assert _cli("fleet", "--dump-plan") == 0
    dumped = json.loads(capsys.readouterr().out)
    assert dumped == FleetConfig(homes=10).to_plan()


def test_cli_flags_override_plan_file(tmp_path, capsys):
    path = tmp_path / "plan.json"
    _plan().save(str(path))
    assert _cli("fleet", "--plan", str(path), "--homes", "3",
                "--dump-plan") == 0
    dumped = json.loads(capsys.readouterr().out)
    assert dumped["homes"] == 3            # flag beats plan
    assert dumped["model"] == "wv"         # plan beats default
    assert dumped["seed"] == 42


def test_cli_accepts_bare_fleet_dict_plan(tmp_path, capsys):
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps({"homes": 4, "model": "gsv"}))
    assert _cli("fleet", "--plan", str(path), "--dump-plan") == 0
    dumped = json.loads(capsys.readouterr().out)
    assert (dumped["homes"], dumped["model"]) == (4, "gsv")


def test_cli_rejects_bad_plan_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"homes": 4, "warp": 9}))
    assert _cli("fleet", "--plan", str(path), "--dump-plan") == 2
    assert "unknown" in capsys.readouterr().err


def test_cli_fleet_ops_apply_and_status(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    _plan().save(str(plan_path))
    ops_path = tmp_path / "ops.jsonl"
    json_path = tmp_path / "result.json"
    assert _cli("fleet-ops", "apply", "--plan", str(plan_path),
                "--ops-log", str(ops_path), "--json",
                str(json_path)) == 0
    out = capsys.readouterr()
    payload = json.loads(out.out)
    assert payload["oracle"]["ok"]
    assert payload["migrated"] > 0
    assert json_path.read_text() == out.out
    log = OpsLog.load(str(ops_path))
    assert log.counts()["complete"] == 1
    assert _cli("fleet-ops", "status", "--ops-log", str(ops_path)) == 0
    status = capsys.readouterr()
    assert "complete" in status.out
    assert "oracle_ok=True" in status.err


def test_cli_fleet_ops_apply_rejects_invalid_plan(tmp_path, capsys):
    path = tmp_path / "bad-plan.json"
    data = _plan().to_dict()
    data["cohorts"].append({"name": "stable", "fraction": 0.1})
    path.write_text(json.dumps(data))
    assert _cli("fleet-ops", "apply", "--plan", str(path)) == 2
    assert "reserved" in capsys.readouterr().err


def test_serial_and_thread_backends_agree():
    serial = ControlLoop(_plan()).run()
    threaded = ControlLoop(_plan(
        fleet=dict(BASE_FLEET, backend="thread", workers=3))).run()
    strip = ("backend", "workers")
    serial_fleet = dict(serial.plan.fleet)
    threaded_fleet = dict(threaded.plan.fleet)
    for key in strip:
        serial_fleet.pop(key, None)
        threaded_fleet.pop(key, None)
    assert [{k: v for k, v in row.items()} for row in serial.rows] == \
        [{k: v for k, v in row.items()} for row in threaded.rows]
    assert serial.cohorts == threaded.cohorts
