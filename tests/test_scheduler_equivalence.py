"""Scheduler-independence properties.

The scheduler decides *where* a routine lands in the serialization
order, never *whether* the result is serializable — and on workloads
with no conflicts at all, every scheduler must produce the identical
outcome.
"""

from hypothesis import given, settings, strategies as st

from repro.core.controller import RoutineStatus
from repro.metrics.congruence import final_state_serializable
from tests.conftest import Home, routine

SCHEDULERS = ("fcfs", "jit", "timeline")


class TestConflictFreeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(durations=st.lists(st.sampled_from([0.5, 2.0, 10.0]),
                              min_size=2, max_size=5),
           offsets=st.lists(st.sampled_from([0.0, 0.5, 3.0]),
                            min_size=2, max_size=5))
    def test_disjoint_routines_identical_across_schedulers(
            self, durations, offsets):
        n = min(len(durations), len(offsets))
        outcomes = []
        for scheduler in SCHEDULERS:
            home = Home(model="ev", scheduler=scheduler, n_devices=n)
            runs = [home.submit(
                routine(f"r{i}", [(i, f"V{i}", durations[i])]),
                when=offsets[i]) for i in range(n)]
            result = home.run()
            outcomes.append((
                tuple(round(r.finish_time, 6) for r in runs),
                tuple(sorted(result.end_state.items())),
            ))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_all_schedulers_same_end_state_on_conflicts(self):
        """With conflicts the *orders* may differ but each scheduler's
        end state must be serially equivalent."""
        plan = [
            ("a", [(0, "A0", 2.0), (1, "A1", 8.0)], 0.0),
            ("b", [(0, "B0", 2.0)], 0.5),
            ("c", [(1, "C1", 2.0), (2, "C2", 2.0)], 1.0),
            ("d", [(2, "D2", 6.0), (0, "D0", 2.0)], 1.5),
        ]
        for scheduler in SCHEDULERS:
            home = Home(model="ev", scheduler=scheduler, n_devices=3)
            for name, steps, at in plan:
                home.submit(routine(name, steps), when=at)
            result = home.run()
            assert all(r.status is RoutineStatus.COMMITTED
                       for r in result.runs)
            assert final_state_serializable(result, home.initial)


class TestSchedulerMonotonicity:
    def test_timeline_never_slower_than_fcfs_on_pipeline_case(self):
        """A short routine arriving behind a long lock-holder: TL's
        pre-lease makes it strictly faster than FCFS's queueing."""

        def short_latency(scheduler):
            home = Home(model="ev", scheduler=scheduler, n_devices=2)
            home.submit(routine("long", [(0, "L", 120.0),
                                         (1, "L", 2.0)]), when=0.0)
            short = home.submit(routine("short", [(1, "S", 2.0)]),
                                when=0.5)
            home.run()
            return short.latency

        assert short_latency("timeline") < short_latency("fcfs") / 5
