"""Tests for the JSON routine spec (Fig 10)."""

import json

import pytest

from repro.core.spec import parse_routine, routine_to_spec
from repro.devices.registry import DeviceRegistry
from repro.errors import RoutineSpecError


@pytest.fixture
def registry():
    reg = DeviceRegistry()
    reg.create("coffee_maker", "coffee")
    reg.create("toaster", "toaster")
    return reg


BREAKFAST = {
    "routineName": "Prepare Breakfast",
    "commands": [
        {"device": "coffee", "action": "ON", "durationSec": 240,
         "priority": "MUST"},
        {"device": "toaster", "action": "ON", "durationSec": 120,
         "priority": "BEST_EFFORT"},
    ],
}


class TestParse:
    def test_parse_dict(self, registry):
        routine = parse_routine(BREAKFAST, registry)
        assert routine.name == "Prepare Breakfast"
        assert len(routine.commands) == 2
        assert routine.commands[0].must is True
        assert routine.commands[1].must is False
        assert routine.commands[0].duration == 240.0

    def test_parse_json_string(self, registry):
        routine = parse_routine(json.dumps(BREAKFAST), registry)
        assert routine.commands[0].value == "ON"

    def test_device_by_id(self, registry):
        spec = {"routineName": "r",
                "commands": [{"device": 1, "action": "ON"}]}
        routine = parse_routine(spec, registry)
        assert routine.commands[0].device_id == 1

    def test_read_command(self, registry):
        spec = {"routineName": "r",
                "commands": [{"device": "coffee", "read": True}]}
        routine = parse_routine(spec, registry)
        assert routine.commands[0].is_read

    def test_undo_handler(self, registry):
        spec = {"routineName": "r",
                "commands": [{"device": "coffee", "action": "ON",
                              "undoable": False, "undoAction": "OFF"}]}
        command = parse_routine(spec, registry).commands[0]
        assert command.undoable is False
        assert command.undo_value == "OFF"

    @pytest.mark.parametrize("broken", [
        "not json {",
        {"commands": [{"device": "coffee", "action": "ON"}]},
        {"routineName": "r"},
        {"routineName": "r", "commands": []},
        {"routineName": "r", "commands": ["x"]},
        {"routineName": "r", "commands": [{"action": "ON"}]},
        {"routineName": "r", "commands": [{"device": "coffee"}]},
        {"routineName": "r", "commands": [
            {"device": "coffee", "action": "ON", "priority": "MEDIUM"}]},
        {"routineName": "r", "commands": [
            {"device": "coffee", "action": "ON", "durationSec": -3}]},
        ["not", "an", "object"],
    ])
    def test_malformed_specs_rejected(self, registry, broken):
        with pytest.raises(RoutineSpecError):
            parse_routine(broken, registry)


class TestRoundTrip:
    def test_round_trip(self, registry):
        routine = parse_routine(BREAKFAST, registry)
        spec = routine_to_spec(routine, registry)
        again = parse_routine(spec, registry)
        assert again.name == routine.name
        assert [c.device_id for c in again.commands] == \
            [c.device_id for c in routine.commands]
        assert [c.must for c in again.commands] == \
            [c.must for c in routine.commands]
        assert [c.duration for c in again.commands] == \
            [c.duration for c in routine.commands]
