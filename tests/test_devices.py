"""Tests for the device substrate: devices, catalog, registry, network,
failure injection."""

import pytest

from repro.devices.catalog import DEVICE_CATALOG, make_device
from repro.devices.device import Device, DeviceKind, ensure_same_type
from repro.devices.failures import FailureInjector, FailurePlan
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.errors import DeviceError, DeviceUnavailableError
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class TestDevice:
    def test_apply_changes_state_and_logs(self):
        device = Device(0, "light")
        device.apply("ON", now=1.0, source=7)
        assert device.state == "ON"
        assert device.write_log == [(1.0, "ON", 7)]

    def test_apply_fails_when_down(self):
        device = Device(0, "light")
        device.fail()
        with pytest.raises(DeviceUnavailableError):
            device.apply("ON", now=1.0)
        assert device.state == "OFF"

    def test_read_fails_when_down(self):
        device = Device(0, "light")
        device.fail()
        with pytest.raises(DeviceUnavailableError):
            device.read()

    def test_restart_retains_state(self):
        device = Device(0, "light")
        device.apply("ON", now=0.0)
        device.fail()
        device.restart()
        assert device.read() == "ON"

    def test_watchers_fire(self):
        device = Device(0, "light")
        seen = []
        device.watch(lambda dev, value: seen.append(value))
        device.apply("ON", now=0.0)
        assert seen == ["ON"]

    def test_last_writer(self):
        device = Device(0, "light")
        assert device.last_writer() is None
        device.apply("ON", now=0.0, source=3)
        assert device.last_writer() == 3

    def test_group_kind_validation(self):
        lights = [Device(i, f"l{i}", DeviceKind.SWITCH) for i in range(3)]
        ensure_same_type(lights)
        mixed = lights + [Device(9, "lock", DeviceKind.LOCK)]
        with pytest.raises(DeviceError):
            ensure_same_type(mixed)
        with pytest.raises(DeviceError):
            ensure_same_type([])


class TestCatalog:
    def test_all_specs_instantiate(self):
        for index, type_name in enumerate(DEVICE_CATALOG):
            device = make_device(index, type_name)
            assert device.state == DEVICE_CATALOG[type_name].initial_state

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            make_device(0, "warp-core")

    def test_custom_name(self):
        assert make_device(0, "light", "hall").name == "hall"

    def test_default_name(self):
        assert make_device(3, "light").name == "light-3"


class TestRegistry:
    def test_create_assigns_sequential_ids(self):
        registry = DeviceRegistry()
        a = registry.create("light")
        b = registry.create("plug")
        assert (a.device_id, b.device_id) == (0, 1)

    def test_duplicate_name_rejected(self):
        registry = DeviceRegistry()
        registry.create("light", "hall")
        with pytest.raises(DeviceError):
            registry.create("plug", "hall")

    def test_duplicate_id_rejected(self):
        registry = DeviceRegistry()
        registry.add(Device(0, "a"))
        with pytest.raises(DeviceError):
            registry.add(Device(0, "b"))

    def test_lookup_by_id_and_name(self):
        registry = DeviceRegistry()
        device = registry.create("light", "hall")
        assert registry.get(device.device_id) is device
        assert registry.by_name("hall") is device
        assert registry.find("nope") is None
        with pytest.raises(DeviceError):
            registry.get(99)
        with pytest.raises(DeviceError):
            registry.by_name("nope")

    def test_create_many(self):
        registry = DeviceRegistry()
        lights = registry.create_many("light", 3)
        assert [d.name for d in lights] == \
            ["light-0", "light-1", "light-2"]

    def test_snapshot_and_reset(self):
        registry = DeviceRegistry()
        device = registry.create("light")
        device.apply("ON", now=0.0)
        device.fail()
        assert registry.snapshot() == {0: "ON"}
        assert registry.failed_ids() == [0]
        registry.reset()
        assert registry.snapshot() == {0: "OFF"}
        assert registry.failed_ids() == []
        assert device.write_log == []

    def test_iteration_and_len(self):
        registry = DeviceRegistry()
        registry.create_many("plug", 4)
        assert len(registry) == 4
        assert len(list(registry)) == 4
        assert registry.ids() == [0, 1, 2, 3]
        assert 2 in registry


class TestLatencyModel:
    def test_deterministic(self):
        model = LatencyModel.deterministic(50.0)
        rng = RandomStreams(seed=0).stream("net")
        assert model.sample(rng) == pytest.approx(0.05)

    def test_jitter_positive_and_floored(self):
        model = LatencyModel(median_ms=60.0, sigma=0.6, floor_ms=5.0)
        rng = RandomStreams(seed=0).stream("net")
        for _ in range(500):
            assert model.sample(rng) >= 0.005

    def test_median_roughly_respected(self):
        model = LatencyModel(median_ms=100.0, sigma=0.5, floor_ms=1.0)
        rng = RandomStreams(seed=0).stream("net")
        samples = sorted(model.sample(rng) for _ in range(999))
        assert 0.08 < samples[len(samples) // 2] < 0.12


class TestFailureInjector:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FailurePlan(0, fail_at=5.0, restart_at=1.0)

    def test_fail_and_restart_happen_on_schedule(self):
        sim = Simulator()
        registry = DeviceRegistry()
        device = registry.create("plug")
        injector = FailureInjector(sim, registry)
        injector.add(FailurePlan(0, fail_at=2.0, restart_at=5.0))
        injector.arm()
        sim.run(until=3.0)
        assert device.failed
        sim.run()
        assert not device.failed

    def test_random_plans_fraction(self):
        rng = RandomStreams(seed=1).stream("f")
        plans = FailureInjector.random_plans(rng, list(range(20)), 0.25,
                                             horizon=100.0)
        assert len(plans) == 5
        assert all(0 <= plan.fail_at <= 100.0 for plan in plans)
        assert len({plan.device_id for plan in plans}) == 5

    def test_random_plans_with_restart(self):
        rng = RandomStreams(seed=1).stream("f")
        plans = FailureInjector.random_plans(rng, list(range(10)), 0.5,
                                             horizon=50.0,
                                             restart_after=7.0)
        for plan in plans:
            assert plan.restart_at == pytest.approx(plan.fail_at + 7.0)

    def test_random_plans_rejects_bad_fraction(self):
        rng = RandomStreams(seed=1).stream("f")
        with pytest.raises(ValueError):
            FailureInjector.random_plans(rng, [1, 2], 1.5, horizon=10.0)
