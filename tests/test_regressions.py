"""Regression tests for bugs found during development.

Each test encodes a concrete interleaving that once broke
serializability; they must stay green forever.
"""

import pytest

from repro.core.controller import ControllerConfig, RoutineStatus
from repro.metrics.congruence import final_state_serializable
from repro.metrics.serialization import (reconstruct_serial_order,
                                         validate_serial_order)
from tests.conftest import Home, routine


class TestCompactionPrecedenceLeak:
    """Commit compaction (Fig 7) removed a still-active routine's
    lock-access; a later JiT pre-lease then contradicted the erased
    order, producing a cyclic (non-serializable) execution."""

    def test_direct_compaction_leak(self):
        home = Home(model="ev", scheduler="jit", n_devices=4,
                    config=ControllerConfig(paranoid=True))
        # r0 writes dev2 then queues on dev0 behind pre-leasing shorts.
        home.submit(routine("r0", [(2, "V02", 0.0), (0, "V00", 0.0)]),
                    when=0.0)
        for index in (1, 2):
            home.submit(routine(f"s{index}", [(0, f"V{index}0", 0.0)]),
                        when=0.0)
        # r3 arrives later: dev0 (pre-lease before r0) + dev2 — its dev2
        # access must be ordered after r0 even though r5's commit
        # compacted r0's dev2 entry away.
        home.submit(routine("r3", [(0, "V30", 0.0), (1, "V31", 0.0),
                                   (2, "V32", 0.0)]), when=0.0)
        home.submit(routine("s4", [(0, "V40", 0.0)]), when=0.0)
        home.submit(routine("r5", [(2, "V52", 0.0)]), when=0.0)
        result = home.run()
        assert all(run.status is RoutineStatus.COMMITTED
                   for run in result.runs)
        order = reconstruct_serial_order(result)  # must be acyclic
        assert validate_serial_order(result, home.initial, order)

    def test_transitive_leak_through_committed_routine(self):
        """The subtler variant: the constraint flowed through a
        *committed* middleman (r0 < r4 on dev2; r4 commits; r1 then
        placed after r4's committed dev1 state but pre-leased before r0
        on dev0)."""
        home = Home(model="ev", scheduler="jit", n_devices=4,
                    config=ControllerConfig(paranoid=True))
        home.submit(routine("r0", [(2, "A", 0.0), (0, "B", 0.0),
                                   (3, "C", 0.0)]), when=0.0)
        home.submit(routine("r1", [(0, "D", 0.0), (1, "E", 0.0)]),
                    when=0.1)
        home.submit(routine("r2", [(0, "F", 0.0)]), when=0.0)
        home.submit(routine("r3", [(0, "G", 0.0)]), when=0.0)
        home.submit(routine("r4", [(1, "H", 0.0), (2, "I", 0.0)]),
                    when=0.0)
        home.submit(routine("r5", [(0, "J", 0.5)]), when=0.0)
        result = home.run()
        order = reconstruct_serial_order(result)
        assert validate_serial_order(result, home.initial, order)

    def test_constraints_cleared_when_routine_finishes(self):
        """compacted_before entries must not leak after their routine
        finishes (they would progressively forbid all pre-leases)."""
        home = Home(model="ev", scheduler="jit", n_devices=2)
        home.submit(routine("a", [(0, "A", 0.5), (1, "B", 1.0)]),
                    when=0.0)
        home.submit(routine("b", [(0, "C", 0.5)]), when=0.1)
        home.run()
        hidden = home.controller.compacted_before
        assert all(not members for members in hidden.values())


class TestRollbackRace:
    """Rollback writes used to fly through the driver with their own
    network delay, racing the next conflicting routine's first command;
    the successor then captured a stale prior state and 'restored' the
    aborted value on its own abort."""

    def test_psv_rollback_ordered_before_successor(self):
        home = Home(model="psv", n_devices=3)
        r0 = home.submit(routine("r0", [(0, "ON", 0.0), (1, "ON", 0.5)]),
                         when=0.0)
        others = [home.submit(routine(f"r{i}", [(0, "ON", 0.0)]),
                              when=0.0) for i in range(1, 5)]
        r5 = home.submit(routine("r5", [(1, "ON", 0.0)]), when=0.0)
        home.detect_failure(0, at=0.5)
        result = home.run()
        assert validate_serial_order(result, home.initial)

    def test_successor_prior_state_sees_rollback(self):
        home = Home(model="gsv", n_devices=2)
        bad = home.submit(routine("bad", [(0, "DIRTY", 0.5),
                                          (1, "ON", 5.0)]), when=0.0)
        follow = home.submit(routine("follow", [(0, "CLEAN", 0.5)]),
                             when=0.1)
        home.detect_failure(1, at=2.0)  # aborts bad mid device-1 touch
        result = home.run()
        assert bad.status is RoutineStatus.ABORTED
        assert follow.status is RoutineStatus.COMMITTED
        # follow's captured prior is the rolled-back OFF, never DIRTY.
        assert follow.prior_states[0] == "OFF"
        assert result.end_state[0] == "CLEAN"


class TestRevocationPostLeaseInteraction:
    """With post-leasing ablated, locks are held to routine finish;
    duration-based revocation deadlines then fired spuriously and
    aborted healthy routines."""

    def test_no_spurious_revocation_with_post_lease_off(self):
        config = ControllerConfig(pre_lease=True, post_lease=False,
                                  paranoid=True)
        home = Home(model="ev", scheduler="jit", n_devices=3,
                    config=config)
        home.submit(routine("r0", [(0, "A", 0.0), (1, "B", 0.0),
                                   (2, "C", 0.0)]), when=0.1)
        home.submit(routine("r1", [(0, "D", 0.0)]), when=0.0)
        home.submit(routine("r2", [(2, "E", 0.0), (1, "F", 0.0)]),
                    when=0.1)
        home.submit(routine("r3", [(1, "G", 2.0)]), when=0.1)
        result = home.run()
        assert all(run.status is RoutineStatus.COMMITTED
                   for run in result.runs)
        assert final_state_serializable(result, home.initial)
