"""Behavioral tests for Weak Visibility and (Strong) GSV."""

import pytest

from repro.core.controller import RoutineStatus
from tests.conftest import Home, routine


class TestWeakVisibility:
    def test_runs_immediately_no_isolation(self):
        home = Home(model="wv", n_devices=3)
        on = routine("on", [(0, "ON", 1.0), (1, "ON", 1.0), (2, "ON", 1.0)])
        # A faster OFF routine starts mid-way and overtakes ON's frontier:
        # devices behind the frontier end OFF, ahead of it end ON.
        off = routine("off", [(0, "OFF", 0.2), (1, "OFF", 0.2),
                              (2, "OFF", 0.2)])
        home.submit(on, when=0.0)
        home.submit(off, when=1.5)
        result = home.run()
        assert all(r.status is RoutineStatus.COMMITTED for r in result.runs)
        assert result.end_state == {0: "OFF", 1: "OFF", 2: "ON"}

    def test_skips_failed_devices_silently(self):
        home = Home(model="wv", n_devices=2)
        home.registry.get(0).fail()
        r = routine("r", [(0, "ON", 1.0), (1, "ON", 1.0)])
        home.submit(r)
        result = home.run()
        run = result.runs[0]
        assert run.status is RoutineStatus.COMMITTED
        assert run.executions[0].skipped
        assert result.end_state == {0: "OFF", 1: "ON"}

    def test_no_wait_time(self):
        home = Home(model="wv", n_devices=1)
        a = routine("a", [(0, "ON", 5.0)])
        b = routine("b", [(0, "OFF", 5.0)])
        home.submit(a, when=0.0)
        home.submit(b, when=1.0)
        result = home.run()
        assert all(r.wait_time == 0.0 for r in result.runs)


class TestGSV:
    def test_one_routine_at_a_time(self):
        home = Home(model="gsv", n_devices=2)
        # Disjoint devices, but GSV still serializes them.
        a = routine("a", [(0, "ON", 5.0)])
        b = routine("b", [(1, "ON", 5.0)])
        home.submit(a, when=0.0)
        home.submit(b, when=0.0)
        result = home.run()
        run_a, run_b = result.runs
        assert run_b.start_time >= run_a.finish_time

    def test_fifo_order(self):
        home = Home(model="gsv", n_devices=1)
        runs = [home.submit(routine(f"r{i}", [(0, f"V{i}", 1.0)]),
                            when=0.0) for i in range(4)]
        home.run()
        starts = [run.start_time for run in runs]
        assert starts == sorted(starts)

    def test_aborts_on_touched_device_failure_mid_run(self):
        home = Home(model="gsv", n_devices=2)
        r = routine("r", [(0, "ON", 5.0), (1, "ON", 5.0)])
        home.submit(r, when=0.0)
        home.detect_failure(1, at=2.0)  # while command 0 is running
        result = home.run()
        run = result.runs[0]
        assert run.status is RoutineStatus.ABORTED
        assert "failure" in run.abort_reason

    def test_loose_gsv_survives_unrelated_failure(self):
        home = Home(model="gsv", n_devices=3)
        r = routine("r", [(0, "ON", 5.0)])
        home.submit(r, when=0.0)
        home.detect_failure(2, at=2.0)  # device 2 is not touched by r
        result = home.run()
        assert result.runs[0].status is RoutineStatus.COMMITTED

    def test_strong_gsv_aborts_on_any_failure(self):
        home = Home(model="sgsv", n_devices=3)
        r = routine("r", [(0, "ON", 5.0)])
        home.submit(r, when=0.0)
        home.detect_failure(2, at=2.0)
        result = home.run()
        assert result.runs[0].status is RoutineStatus.ABORTED

    def test_aborts_on_restart_event_too(self):
        home = Home(model="gsv", n_devices=2)
        r = routine("r", [(0, "ON", 3.0), (1, "ON", 3.0)])
        home.submit(r, when=0.0)
        home.detect_failure(1, at=0.5)
        # Restart arrives mid-run of r2, which touches device 1 with a
        # must command: still an abort trigger in GSV (§3).
        run2 = routine("r2", [(0, "OFF", 2.0), (1, "ON", 1.0)])
        home.submit(run2, when=10.0)
        home.detect_restart(1, at=10.5)
        result = home.run()
        statuses = [r.status for r in result.runs]
        assert statuses[0] is RoutineStatus.ABORTED
        assert statuses[1] is RoutineStatus.ABORTED

    def test_rollback_restores_prior_state(self):
        home = Home(model="gsv", n_devices=2)
        r = routine("r", [(0, "ON", 2.0), (1, "ON", 6.0)])
        home.submit(r, when=0.0)
        home.detect_failure(1, at=4.0)  # after device 1's write applied
        result = home.run()
        run = result.runs[0]
        assert run.status is RoutineStatus.ABORTED
        # Device 0's ON is rolled back to OFF; device 1 is failed so its
        # reconciliation is deferred.
        assert result.end_state[0] == "OFF"
        assert run.rolled_back_commands >= 1

    def test_reconciles_failed_device_on_restart(self):
        home = Home(model="gsv", n_devices=2)
        r = routine("r", [(0, "ON", 2.0), (1, "ON", 6.0)])
        home.submit(r, when=0.0)
        home.detect_failure(1, at=4.0)
        home.detect_restart(1, at=20.0)
        result = home.run()
        # Device 1 physically held ON through the failure; after restart
        # the hub reconciles it back to the rollback target OFF.
        assert result.end_state == {0: "OFF", 1: "OFF"}

    def test_must_unreachable_aborts(self):
        home = Home(model="gsv", n_devices=2)
        home.registry.get(1).fail()
        r = routine("r", [(0, "ON", 1.0), (1, "ON", 1.0)])
        home.submit(r)
        result = home.run()
        assert result.runs[0].status is RoutineStatus.ABORTED
        assert result.end_state[0] == "OFF"  # rolled back

    def test_best_effort_unreachable_skipped(self):
        home = Home(model="gsv", n_devices=2)
        home.registry.get(0).fail()
        r = routine("r", [(0, "ON", 1.0, False), (1, "ON", 1.0)])
        home.submit(r)
        result = home.run()
        run = result.runs[0]
        assert run.status is RoutineStatus.COMMITTED
        assert run.executions[0].skipped
        assert result.end_state[1] == "ON"
