"""Tests for the user feedback log and undo handlers."""

import pytest

from repro.core.command import Command
from repro.core.routine import Routine
from repro.core.undo import UndoRegistry, quiesce_handler
from repro.hub.log import FeedbackKind, FeedbackLog
from tests.conftest import Home, routine


class TestFeedbackLog:
    def test_commit_entry(self):
        home = Home(model="ev", n_devices=1)
        log = FeedbackLog(home.controller)
        home.submit(routine("r", [(0, "ON", 1.0)]))
        home.run()
        kinds = [entry.kind for entry in log.entries]
        assert kinds == [FeedbackKind.ROUTINE_COMMITTED]
        assert "1 commands" in log.entries[0].detail

    def test_abort_and_rollback_entries(self):
        home = Home(model="ev", n_devices=2)
        log = FeedbackLog(home.controller)
        home.registry.get(1).fail()
        home.submit(routine("r", [(0, "ON", 1.0), (1, "ON", 1.0)]))
        home.run()
        kinds = [entry.kind for entry in log.entries]
        assert FeedbackKind.ROUTINE_ABORTED in kinds
        assert FeedbackKind.COMMANDS_ROLLED_BACK in kinds
        assert log.aborts()[0].routine == "r"

    def test_best_effort_skip_entry(self):
        home = Home(model="ev", n_devices=2)
        log = FeedbackLog(home.controller)
        home.registry.get(0).fail()
        home.submit(routine("r", [(0, "ON", 1.0, False),
                                  (1, "ON", 1.0)]))
        home.run()
        kinds = [entry.kind for entry in log.entries]
        assert FeedbackKind.ROUTINE_COMMITTED in kinds
        assert FeedbackKind.COMMAND_SKIPPED in kinds

    def test_detection_entries_and_render(self):
        home = Home(model="ev", n_devices=2)
        log = FeedbackLog(home.controller)
        home.submit(routine("r", [(0, "ON", 10.0)]))
        home.detect_failure(1, at=2.0)
        home.detect_restart(1, at=4.0)
        home.run()
        log.record_detections()
        text = log.render()
        assert "device-failed" in text
        assert "device-restarted" in text
        # Entries are time-ordered in the rendering.
        times = [float(line.split("s]")[0].strip("[ "))
                 for line in text.splitlines()]
        assert times == sorted(times)


class TestUndoRegistry:
    def test_default_is_prior_state(self):
        registry = UndoRegistry()
        command = Command(device_id=0, value="ON")
        assert registry.resolve(command, "OFF") == "OFF"

    def test_command_undo_value_wins(self):
        registry = UndoRegistry()
        registry.register(0, quiesce_handler("SAFE"))
        command = Command(device_id=0, value="ON", undo_value="EXPLICIT")
        assert registry.resolve(command, "OFF") == "EXPLICIT"

    def test_device_handler(self):
        registry = UndoRegistry()
        registry.register(3, quiesce_handler("DISARMED"))
        command = Command(device_id=3, value="BLARE")
        assert registry.resolve(command, "ARMED") == "DISARMED"

    def test_default_handler(self):
        registry = UndoRegistry()
        registry.register_default(lambda cmd, prior: f"undo-{prior}")
        command = Command(device_id=1, value="X")
        assert registry.resolve(command, "A") == "undo-A"

    def test_irreversible_command_rolls_back_via_handler(self):
        """The paper's 'blare a test alarm' case: undo parks the device
        in a safe state instead of replaying the prior value."""
        home = Home(model="ev", n_devices=2)
        home.controller.undo_registry.register(
            0, quiesce_handler("QUIESCED"))
        alarm_test = Routine(name="alarm-test", commands=[
            Command(device_id=0, value="BLARE", duration=2.0,
                    undoable=False),
            Command(device_id=1, value="ON", duration=10.0),
        ])
        run = home.submit(alarm_test)
        home.detect_failure(1, at=4.0)  # abort mid device-1 touch
        result = home.run()
        assert run.status.value == "aborted"
        assert result.end_state[0] == "QUIESCED"

    def test_undo_value_from_spec_applied_on_rollback(self):
        home = Home(model="gsv", n_devices=2)
        r = Routine(name="r", commands=[
            Command(device_id=0, value="RUN", duration=1.0,
                    undo_value="PARKED"),
            Command(device_id=1, value="ON", duration=5.0),
        ])
        run = home.submit(r)
        home.detect_failure(1, at=3.0)
        result = home.run()
        assert run.status.value == "aborted"
        assert result.end_state[0] == "PARKED"
