"""Cross-model integration tests on realistic workloads."""

import pytest

from repro.core.controller import RoutineStatus
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.congruence import final_state_serializable
from repro.metrics.serialization import (reconstruct_serial_order,
                                         validate_serial_order)
from repro.workloads.micro import MicroParams, generate_microbenchmark
from repro.workloads.scenarios import (factory_scenario, morning_scenario,
                                       party_scenario)


SERIALIZING = ("ev", "psv", "gsv")


class TestScenarioSerializability:
    @pytest.mark.parametrize("factory", [morning_scenario, party_scenario])
    @pytest.mark.parametrize("model", SERIALIZING)
    def test_scenarios_serializable(self, factory, model):
        workload = factory(seed=11)
        setup = ExperimentSetup(model=model, check_final=False)
        result, _report, _c = run_workload(workload, setup)
        assert all(run.done for run in result.runs)
        initial = {index: None for index in range(len(workload.devices))}
        # Build the true initial snapshot from a fresh registry.
        from repro.devices.registry import DeviceRegistry
        registry = DeviceRegistry()
        for type_name, name in workload.devices:
            registry.create(type_name, name)
        initial = registry.snapshot()
        order = reconstruct_serial_order(result)
        assert validate_serial_order(result, initial, order)

    @pytest.mark.parametrize("scheduler", ["fcfs", "jit", "timeline"])
    def test_factory_ev_serializable_all_schedulers(self, scheduler):
        workload = factory_scenario(seed=5, stages=12,
                                    routines_per_stage=2)
        setup = ExperimentSetup(model="ev", scheduler=scheduler,
                                check_final=False)
        result, _report, _c = run_workload(workload, setup)
        assert all(run.status is RoutineStatus.COMMITTED
                   for run in result.runs)
        from repro.devices.registry import DeviceRegistry
        registry = DeviceRegistry()
        for type_name, name in workload.devices:
            registry.create(type_name, name)
        order = reconstruct_serial_order(result)
        assert validate_serial_order(result, registry.snapshot(), order)


class TestModelOrdering:
    """The qualitative Table 1 relations hold on the microbenchmark."""

    @pytest.fixture(scope="class")
    def reports(self):
        params = MicroParams(routines=30, concurrency=4, devices=10,
                             long_duration_s=120.0, short_duration_s=5.0)
        out = {}
        for model in ("wv", "ev", "psv", "gsv"):
            latencies, waits, parallelism = [], [], []
            for trial in range(4):
                workload = generate_microbenchmark(params,
                                                   seed=300 + trial)
                setup = ExperimentSetup(model=model, seed=trial,
                                        check_final=False)
                _result, report, _c = run_workload(workload, setup,
                                                   trial=trial)
                latencies.append(report.latency["p50"])
                waits.append(report.wait_time["p50"])
                parallelism.append(report.parallelism_mean)
            out[model] = {
                "lat": sum(latencies) / len(latencies),
                "wait": sum(waits) / len(waits),
                "par": sum(parallelism) / len(parallelism),
            }
        return out

    def test_latency_ordering(self, reports):
        assert reports["wv"]["lat"] <= reports["ev"]["lat"] * 1.1
        assert reports["ev"]["lat"] < reports["psv"]["lat"]
        assert reports["psv"]["lat"] < reports["gsv"]["lat"]

    def test_wait_time_ordering(self, reports):
        # Table 1: WV/EV low wait; GSV high.
        assert reports["ev"]["wait"] < reports["gsv"]["wait"]
        assert reports["wv"]["wait"] <= reports["ev"]["wait"] + 1e-9

    def test_parallelism_ordering(self, reports):
        assert reports["gsv"]["par"] <= 1.05
        assert reports["ev"]["par"] > 2 * reports["gsv"]["par"]


class TestMixedFailureWorkload:
    def test_all_models_terminate_and_account(self):
        params = MicroParams(routines=24, concurrency=4, devices=10,
                             failed_device_pct=30.0,
                             long_duration_s=60.0, short_duration_s=4.0,
                             must_pct=80.0, restart_after_s=30.0)
        for model in ("wv", "ev", "psv", "gsv", "sgsv"):
            workload = generate_microbenchmark(params, seed=9)
            setup = ExperimentSetup(model=model, seed=9,
                                    check_final=False)
            result, report, _c = run_workload(workload, setup)
            assert all(run.done for run in result.runs)
            assert report.committed + report.aborted == 24
            if model != "wv":
                assert validate_serial_order(
                    result, {i: "OFF" for i in range(10)})
