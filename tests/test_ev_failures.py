"""Tests for EV failure serialization (§3) and lineage rollback (§4.3).

Covers the four EV cases: untouched device (arbitrary order), fail+restart
before first touch (serialize before), failure after last touch
(serialize after), and everything else (abort)."""

import pytest

from repro.core.controller import RoutineStatus
from tests.conftest import Home, routine


class TestEVFailureCases:
    def test_case1_unrelated_device(self):
        home = Home(model="ev", n_devices=3)
        r = home.submit(routine("r", [(0, "ON", 5.0)]), when=0.0)
        home.detect_failure(2, at=1.0)
        home.run()
        assert r.status is RoutineStatus.COMMITTED

    def test_case2_fail_and_restart_before_first_touch(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 10.0), (1, "ON", 1.0)]),
                        when=0.0)
        home.detect_failure(1, at=1.0)
        home.detect_restart(1, at=5.0)
        home.run()
        assert r.status is RoutineStatus.COMMITTED

    def test_case3_failure_after_last_touch_serializes_after(self):
        """Unlike PSV, EV commits even if the device is still down at the
        finish point (the cooling example, §3)."""
        home = Home(model="ev", n_devices=2)
        cooling = home.submit(
            routine("cooling", [(0, "CLOSED", 1.0), (1, "ON", 10.0)]),
            when=0.0)
        home.detect_failure(0, at=5.0)  # window fails after its command
        result = home.run()
        assert cooling.status is RoutineStatus.COMMITTED
        assert result.end_state[1] == "ON"

    def test_case4_failure_mid_touch_aborts(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 10.0), (1, "ON", 1.0)]),
                        when=0.0)
        home.detect_failure(0, at=3.0)  # during device 0's command
        home.run()
        assert r.status is RoutineStatus.ABORTED

    def test_still_failed_at_first_touch_aborts(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 5.0), (1, "ON", 1.0)]),
                        when=0.0)
        home.detect_failure(1, at=1.0)  # before r touches device 1
        home.run()
        assert r.status is RoutineStatus.ABORTED

    def test_best_effort_touches_do_not_abort(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 5.0), (1, "ON", 1.0,
                                                       False)]),
                        when=0.0)
        home.detect_failure(1, at=1.0)
        home.run()
        assert r.status is RoutineStatus.COMMITTED
        assert r.executions[-1].skipped

    def test_mid_touch_failure_with_only_best_effort_commands(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 10.0, False),
                                      (1, "ON", 1.0)]), when=0.0)
        home.detect_failure(0, at=3.0)
        home.run()
        # Device 0 only has best-effort commands: no abort.
        assert r.status is RoutineStatus.COMMITTED


class TestEVRollback:
    def test_abort_rolls_back_applied_writes(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 1.0), (1, "ON", 5.0)]),
                        when=0.0)
        home.detect_failure(1, at=2.0)  # mid device-1 touch -> abort
        result = home.run()
        assert r.status is RoutineStatus.ABORTED
        assert result.end_state[0] == "OFF"  # rolled back
        assert r.rolled_back_commands >= 1

    def test_abort_does_not_roll_back_overwritten_device(self):
        """If a successor already wrote the device, the aborting routine
        must NOT roll it back (§4.3's 'last Acquired by Rj' case)."""
        home = Home(model="ev", n_devices=3)
        r1 = home.submit(
            routine("r1", [(0, "A1", 1.0), (1, "LONG", 8.0),
                           (2, "X", 5.0)]), when=0.0)
        r2 = home.submit(routine("r2", [(0, "A2", 1.0)]), when=0.2)
        # r1 aborts while r2 (post-leased device 0) has already written.
        home.detect_failure(2, at=7.0)
        result = home.run()
        assert r1.status is RoutineStatus.ABORTED
        assert r2.status is RoutineStatus.COMMITTED
        assert result.end_state[0] == "A2"  # r2's write survives

    def test_rollback_target_is_previous_lineage_value(self):
        home = Home(model="ev", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "V1", 1.0)]), when=0.0)
        r2 = home.submit(routine("r2", [(0, "V2", 1.0), (1, "Y", 6.0)]),
                         when=0.5)
        home.detect_failure(1, at=4.0)  # aborts r2 mid-touch of device 1
        result = home.run()
        assert r1.status is RoutineStatus.COMMITTED
        assert r2.status is RoutineStatus.ABORTED
        # Device 0 rolls back to r1's committed value, not to OFF.
        assert result.end_state[0] == "V1"

    def test_waiting_routines_proceed_after_abort(self):
        home = Home(model="ev", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A", 3.0), (1, "B", 6.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "C", 1.0)]), when=0.1)
        home.detect_failure(1, at=4.0)  # aborts r1 during device-1 touch
        result = home.run()
        assert r1.status is RoutineStatus.ABORTED
        assert r2.status is RoutineStatus.COMMITTED
        assert result.end_state[0] == "C"

    def test_reconcile_on_restart_after_abort(self):
        home = Home(model="ev", n_devices=2)
        r = home.submit(routine("r", [(0, "ON", 2.0), (1, "ON", 6.0)]),
                        when=0.0)
        home.detect_failure(1, at=4.0)   # abort; device 1 stuck ON
        home.detect_restart(1, at=20.0)
        result = home.run()
        assert r.status is RoutineStatus.ABORTED
        assert result.end_state == {0: "OFF", 1: "OFF"}


class TestEVSerializationWithFailures:
    def test_order_contains_failure_after_routine(self):
        from repro.metrics.serialization import (place_detection_events,
                                                 reconstruct_serial_order)
        home = Home(model="ev", n_devices=2)
        cooling = home.submit(
            routine("cooling", [(0, "CLOSED", 1.0), (1, "ON", 10.0)]),
            when=0.0)
        home.detect_failure(0, at=5.0)
        result = home.run()
        order = reconstruct_serial_order(result)
        timeline = place_detection_events(result, order)
        kinds = [entry[0] for entry in timeline]
        routine_pos = timeline.index(("routine", cooling.routine_id))
        failure_pos = kinds.index("failure")
        assert failure_pos > routine_pos

    def test_validate_serial_order_with_failures(self):
        from repro.metrics.serialization import validate_serial_order
        home = Home(model="ev", n_devices=3)
        home.submit(routine("a", [(0, "ON", 1.0), (1, "ON", 4.0)]),
                    when=0.0)
        home.submit(routine("b", [(2, "ON", 1.0)]), when=0.1)
        home.detect_failure(0, at=3.0)
        result = home.run()
        assert validate_serial_order(result, home.initial)
