"""Tests for the three EV scheduling policies (§5)."""

import pytest

from repro.core.controller import ControllerConfig, RoutineStatus
from repro.core.schedulers import make_scheduler
from tests.conftest import Home, routine


class TestFactory:
    def test_known_names(self):
        home = Home(model="ev")
        for name in ("fcfs", "jit", "timeline", "TL"):
            scheduler = make_scheduler(name, home.controller)
            assert scheduler is not None

    def test_unknown_name(self):
        home = Home(model="ev")
        with pytest.raises(ValueError):
            make_scheduler("priority", home.controller)


class TestFCFS:
    def test_serializes_in_arrival_order(self):
        home = Home(model="ev", scheduler="fcfs", n_devices=1)
        runs = [home.submit(routine(f"r{i}", [(0, f"V{i}", 1.0)]),
                            when=i * 0.01) for i in range(4)]
        result = home.run()
        assert result.end_state[0] == "V3"  # last arrival wins
        from repro.metrics.serialization import reconstruct_serial_order
        assert reconstruct_serial_order(result) == \
            [run.routine_id for run in runs]

    def test_never_pre_leases(self):
        home = Home(model="ev", scheduler="fcfs", n_devices=2)
        home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 1.0)]),
                    when=0.0)
        home.submit(routine("r2", [(1, "C", 1.0)]), when=0.1)
        home.run()
        assert home.controller.scheduler_stats["pre_leases"] == 0

    def test_post_leases_still_pipeline(self):
        home = Home(model="ev", scheduler="fcfs", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A", 1.0), (1, "B", 30.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(0, "C", 1.0)]), when=0.1)
        home.run()
        assert r2.finish_time < r1.finish_time


class TestJiT:
    def test_starts_when_eligible(self):
        home = Home(model="ev", scheduler="jit", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A", 5.0)]), when=0.0)
        r2 = home.submit(routine("r2", [(0, "B", 1.0)]), when=0.1)
        home.run()
        # r2 waits for r1's release, then is scheduled by the
        # lock-release eligibility test.
        assert r2.start_time >= r1.finish_time - 1.0
        assert r2.status is RoutineStatus.COMMITTED

    def test_pre_lease_via_eligibility(self):
        home = Home(model="ev", scheduler="jit", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 1.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(1, "C", 1.0)]), when=0.1)
        result = home.run()
        assert r2.finish_time < r1.finish_time
        # Serialized r2 before r1 on device 1: r1's write is final.
        assert result.end_state[1] == "B"

    def test_ineligible_when_device_acquired(self):
        home = Home(model="ev", scheduler="jit", n_devices=1)
        r1 = home.submit(routine("r1", [(0, "A", 10.0)]), when=0.0)
        r2 = home.submit(routine("r2", [(0, "B", 1.0)]), when=1.0)
        home.run()
        assert r2.start_time >= r1.finish_time - 1.0

    def test_ttl_prevents_starvation(self):
        config = ControllerConfig(jit_ttl_s=5.0)
        home = Home(model="ev", scheduler="jit", n_devices=2,
                    config=config)
        # A stream of short routines on device 1 could starve big,
        # which needs both devices; after its TTL expires nothing may
        # jump ahead of it.
        big = home.submit(routine("big", [(0, "A", 2.0), (1, "B", 2.0)]),
                          when=0.0)
        shorts = [home.submit(routine(f"s{i}", [(1, f"V{i}", 3.0)]),
                              when=0.1 + 0.05 * i) for i in range(6)]
        home.run()
        assert big.status is RoutineStatus.COMMITTED
        finished_before_big = [s for s in shorts
                               if s.finish_time < big.start_time]
        # TTL cap: at most the ones that started within the TTL window.
        assert len(finished_before_big) <= 3


class TestTimeline:
    def test_places_into_gap(self):
        home = Home(model="ev", scheduler="timeline", n_devices=2)
        r1 = home.submit(routine("r1", [(0, "A", 30.0), (1, "B", 2.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(1, "C", 1.0)]), when=0.1)
        home.run()
        assert r2.finish_time < 10.0  # ran in the gap, not after r1

    def test_insertion_times_recorded(self):
        home = Home(model="ev", scheduler="timeline", n_devices=2)
        home.submit(routine("r", [(0, "A", 1.0), (1, "B", 1.0)]))
        home.run()
        times = home.controller.scheduler.insertion_times
        assert len(times) == 1
        assert times[0][0] == 2  # command count

    def test_backtracking_respects_serialization(self):
        """The Fig 9b situation: the first gap for R3's second access
        would contradict the order chosen for its first access."""
        home = Home(model="ev", scheduler="timeline", n_devices=3,
                    config=ControllerConfig(paranoid=True))
        r1 = home.submit(routine("r1", [(0, "A", 10.0), (1, "B", 10.0)]),
                         when=0.0)
        r2 = home.submit(routine("r2", [(2, "C", 5.0), (1, "D", 25.0)]),
                         when=0.0)
        r3 = home.submit(routine("r3", [(2, "E", 8.0), (1, "F", 8.0)]),
                         when=0.5)
        result = home.run()
        for run in (r1, r2, r3):
            assert run.status is RoutineStatus.COMMITTED
        home.controller.table.verify_serialize_before()
        from repro.metrics.congruence import final_state_serializable
        assert final_state_serializable(result, home.initial)

    def test_estimates_scale_with_estimate_error(self):
        config = ControllerConfig(estimate_error=0.5)
        home = Home(model="ev", scheduler="timeline", n_devices=2,
                    config=config)
        run = home.submit(routine("r", [(0, "A", 10.0)]))
        estimates = {home.controller.estimate_duration(
            run, run.routine.lock_requests()[0]) for _ in range(20)}
        assert len(estimates) > 1  # error injection randomizes

    def test_many_contending_routines_all_commit(self):
        home = Home(model="ev", scheduler="timeline", n_devices=4,
                    config=ControllerConfig(paranoid=True))
        for i in range(12):
            steps = [((i + j) % 4, f"V{i}", 1.0 + (i % 3))
                     for j in range(2)]
            home.submit(routine(f"r{i}", steps), when=i * 0.25)
        result = home.run()
        assert all(r.status is RoutineStatus.COMMITTED
                   for r in result.runs)
        from repro.metrics.congruence import final_state_serializable
        assert final_state_serializable(result, home.initial,
                                        exhaustive_limit=6)
