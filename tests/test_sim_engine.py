"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advances(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_equal_time_allowed(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_rejects_backwards(self):
        clock = VirtualClock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None)
        queue.push(1.0, lambda: None)
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_fifo_at_same_time(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None, label="first")
        second = queue.push(1.0, lambda: None, label="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len_counts_live_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4.0, lambda: None)
        assert queue.peek_time() == 4.0


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(2.0, seen.append, "b")
        sim.call_at(1.0, seen.append, "a")
        sim.call_after(3.0, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.call_at(1.5, lambda: times.append(sim.now))
        sim.call_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.call_after(1.0, lambda: seen.append("second"))

        sim.call_at(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        seen = []
        event = sim.call_at(1.0, seen.append, "no")
        sim.call_at(2.0, seen.append, "yes")
        sim.cancel(event)
        sim.run()
        assert seen == ["yes"]

    def test_cancel_none_is_noop(self):
        Simulator().cancel(None)

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        event = sim.call_at(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, "early")
        sim.call_at(10.0, seen.append, "late")
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_with_empty_queue_advances(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.call_after(0.1, forever)

        sim.call_at(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, 1)
        sim.call_at(2.0, seen.append, 2)
        assert sim.step() is True
        assert seen == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.call_at(float(t), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_deterministic_tiebreak_across_runs(self):
        def trace():
            sim = Simulator()
            seen = []
            for index in range(10):
                sim.call_at(1.0, seen.append, index)
            sim.run()
            return seen

        assert trace() == trace()
