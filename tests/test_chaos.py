"""Hub-crash chaos workload, fleet crash schedules, and the
`repro crash-recovery` CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.fleet import FleetConfig, FleetEngine, run_fleet
from repro.workloads.chaos import chaos_workload, run_chaos


class TestChaosWorkload:
    def test_workload_is_seed_deterministic(self):
        a = chaos_workload(seed=5)
        b = chaos_workload(seed=5)
        assert [(r.name, at) for r, at in a.arrivals] == \
            [(r.name, at) for r, at in b.arrivals]
        assert a.failure_plans == b.failure_plans
        assert chaos_workload(seed=6).arrivals[0][1] != a.arrivals[0][1]

    @pytest.mark.parametrize("execution", ("serial", "parallel"))
    @pytest.mark.parametrize("model", ("wv", "gsv", "psv", "ev", "occ"))
    def test_replay_recovery_is_congruent(self, model, execution):
        result = run_chaos(model=model, execution=execution, seed=7,
                           crashes=2)
        assert result.congruent, (model, execution)
        assert len(result.recoveries) == 2
        assert all(r["replayed_events"] > 0 for r in result.recoveries)

    def test_policy_mode_ev_keeps_all_work(self):
        result = run_chaos(model="ev", seed=7, crashes=2,
                           recovery="policy")
        assert result.congruent
        assert result.summary()["recoveries"]["aborted_in_flight"] == 0

    def test_policy_mode_gsv_sheds_in_flight_work(self):
        result = run_chaos(model="gsv", seed=7, crashes=2,
                           recovery="policy")
        assert result.summary()["recoveries"]["aborted_in_flight"] > 0
        assert result.recovered_row["committed"] < \
            result.baseline_row["committed"]

    def test_explicit_crash_point(self):
        result = run_chaos(model="ev", seed=7, crash_event=20)
        assert result.crash_events == [20]
        assert result.congruent

    def test_summary_is_deterministic_json(self):
        a = run_chaos(model="ev", seed=9, crashes=2).to_json()
        b = run_chaos(model="ev", seed=9, crashes=2).to_json()
        assert a == b
        payload = json.loads(a)
        assert payload["congruent"] is True
        assert payload["recoveries"]["count"] == 2


class TestFleetCrashSchedules:
    def test_default_fleet_rows_unchanged(self):
        row = run_fleet(2, seed=42).rows[0]
        assert "hub_crashes" not in row

    def test_crash_fleet_is_deterministic(self):
        a = run_fleet(4, seed=42, crashes=2)
        b = run_fleet(4, seed=42, crashes=2)
        assert a.to_json(per_home=True) == b.to_json(per_home=True)

    def test_replay_mode_fleet_matches_uninterrupted_aggregate(self):
        crashed = run_fleet(4, seed=42, crashes=2, recovery="replay")
        plain = run_fleet(4, seed=42)
        assert crashed.aggregate == plain.aggregate
        rows = crashed.rows
        assert all("hub_crashes" in row for row in rows)
        assert sum(row["hub_replayed_events"] for row in rows) > 0

    def test_crash_config_lands_in_json_header(self):
        config = FleetConfig(homes=2, seed=1, crashes=3,
                             recovery="policy", check_final=False)
        result = FleetEngine(config).run()
        payload = json.loads(result.to_json())
        assert payload["fleet"]["crashes"] == 3
        assert payload["fleet"]["recovery"] == "policy"
        # default configs keep the header byte-identical to older output
        plain = json.loads(FleetEngine(
            FleetConfig(homes=2, seed=1, check_final=False)).run()
            .to_json())
        assert "crashes" not in plain["fleet"]

    def test_specs_carry_crash_schedule(self):
        config = FleetConfig(homes=2, seed=1, crashes=2,
                             recovery="policy")
        specs = FleetEngine(config).specs()
        assert all(spec.crashes == 2 and spec.recovery == "policy"
                   for spec in specs)


class TestCrashRecoveryCli:
    def test_cli_writes_deterministic_json(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert cli_main(["crash-recovery", "--model", "ev", "--seed", "3",
                         "--crashes", "2", "--json", str(first)]) == 0
        assert cli_main(["crash-recovery", "--model", "ev", "--seed", "3",
                         "--crashes", "2", "--json", str(second)]) == 0
        assert first.read_text() == second.read_text()
        payload = json.loads(first.read_text())
        assert payload["congruent"] is True
        out = capsys.readouterr()
        assert "hub crash-recovery" in out.out
        assert "recovery wall-clock" in out.err

    def test_cli_single_crash_event(self, capsys):
        assert cli_main(["crash-recovery", "--model", "gsv",
                         "--recovery", "policy", "--crash-event", "30",
                         "--execution", "parallel"]) == 0
        assert "policy" in capsys.readouterr().out

    def test_cli_rejects_bad_crash_point_flags(self, capsys):
        assert cli_main(["crash-recovery", "--crash-at", "2.0",
                         "--crash-event", "5"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
        assert cli_main(["crash-recovery", "--crash-event", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err
