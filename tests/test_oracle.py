"""The congruence oracle against ground truth: every hand-written
scenario must come back clean under its own model's invariants, and a
deliberately broken run must not."""

import dataclasses

import pytest

from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.oracle import MODEL_INVARIANTS, check_run
from repro.workloads.chaos import chaos_workload
from repro.workloads.fleet_mix import FLEET_SCENARIOS, build_fleet_workload
from repro.workloads.synth import workload_initial_state

MODELS = ("wv", "gsv", "psv", "ev", "occ")

# The eight hand-written scenarios (Table 2 / §7): the fleet registry
# entries (factory-line, the per-home shard, stands in for the full
# 50-stage factory — see test_oracle_flags_occ_stale_rollback below),
# plus the hub-crash chaos evening scene and the §7.3 lights race.
HAND_WRITTEN = tuple(
    name for name in sorted(FLEET_SCENARIOS) if name != "factory"
) + ("chaos", "lights")


def _workload(name, seed=0):
    if name == "chaos":
        return chaos_workload(seed=seed)
    if name == "lights":
        from repro.workloads.lights import lights_workload
        return lights_workload(12, 0.4)
    return build_fleet_workload(name, seed=seed)


def _run(name, model, seed=0):
    workload = _workload(name, seed=seed)
    initial = workload_initial_state(workload)
    setup = ExperimentSetup(model=model, seed=seed, check_final=False)
    result, _report, _controller = run_workload(workload, setup)
    return result, initial


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("scenario", HAND_WRITTEN)
def test_oracle_accepts_hand_written_scenarios(scenario, model):
    result, initial = _run(scenario, model)
    report = check_run(result, initial)
    assert report.ok, (scenario, model,
                       [v.to_dict() for v in report.violations])
    assert report.model == model
    # Model-specific invariants were actually exercised, not skipped.
    for invariant in MODEL_INVARIANTS[model]:
        assert invariant in report.checked


def test_oracle_flags_surviving_aborted_write():
    """A final state decided by an aborted routine's write — one that
    neither a rollback nor a committed writer can explain — is a bug."""
    result, initial = _run("cooling-faulty", "ev")
    aborted_id = result.aborted[0].routine_id
    device_id = next(iter(result.end_state))
    log = list(result.device_write_logs[device_id])
    log.append((result.makespan + 1.0, "EVIL", aborted_id))
    tampered = dataclasses.replace(
        result,
        device_write_logs={**result.device_write_logs, device_id: log},
        end_state={**result.end_state, device_id: "EVIL"})
    report = check_run(tampered, initial)
    assert not report.ok
    assert any(v.invariant == "abort-erasure"
               and v.routine_id == aborted_id
               for v in report.violations)


def test_oracle_flags_occ_stale_rollback_on_full_factory():
    """A true positive the oracle already caught on a real workload:
    under the full 50-stage factory's retry storms, OCC's heuristic
    rollback ("restore last-committed-at-rollback-time, skip if not
    last writer") can resurrect values only aborted routines ever
    wrote, so the end state is not committed-serializable.  Pinned
    deterministically; if a future OCC rollback fix clears it, flip
    this assertion."""
    result, initial = _run("factory", "occ")
    report = check_run(result, initial)
    assert any(v.invariant == "occ-committed-serializable"
               for v in report.violations)


def test_oracle_flags_wv_overlap_under_gsv_invariants():
    """WV runs overlap freely; judged by GSV's isolation invariant the
    oracle must cry foul — proof it can detect real violations."""
    result, initial = _run("morning", "wv")
    report = check_run(result, initial, model="gsv")
    assert not report.ok
    assert any(v.invariant == "gsv-isolation"
               for v in report.violations)


def test_oracle_checked_lists_universal_plus_model():
    result, initial = _run("fanout", "gsv")
    report = check_run(result, initial)
    assert "terminal-status" in report.checked
    assert "gsv-serializable" in report.checked
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["violations"] == []
