"""Hypothesis property tests on core data structures.

Complements test_properties.py (whole-system serializability) with
targeted invariants: lineage gap geometry, lock-request partitions,
statistics helpers, and cross-validation of the two serial-equivalence
checkers.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.command import Command
from repro.core.lineage import Lineage, LockAccess, LockStatus
from repro.core.routine import Routine
from repro.metrics.congruence import serial_end_state_exists
from repro.metrics.stats import (normalized_swap_distance, percentile,
                                 swap_distance)


@st.composite
def scheduled_lineage(draw):
    """A lineage of SCHEDULED entries with non-overlapping plans."""
    lineage = Lineage(0)
    cursor = draw(st.floats(0, 10))
    for rid in range(draw(st.integers(0, 6))):
        gap = draw(st.floats(0, 5))
        duration = draw(st.floats(0.1, 8))
        start = cursor + gap
        lineage.append(LockAccess(routine_id=rid, device_id=0,
                                  planned_start=start,
                                  duration=duration))
        cursor = start + duration
    return lineage


class TestLineageGapGeometry:
    @settings(max_examples=100, deadline=None)
    @given(lineage=scheduled_lineage(), now=st.floats(0, 20),
           earliest=st.floats(0, 30), duration=st.floats(0.1, 5))
    def test_gaps_disjoint_from_projections(self, lineage, now, earliest,
                                            duration):
        gaps = lineage.gaps(now)
        intervals = [(s, e) for (_a, s, e)
                     in lineage.projected_intervals(now)]
        # Tail gap always exists and is infinite.
        assert gaps[-1].end == math.inf
        for gap in gaps:
            assert gap.start >= now
            assert gap.start < gap.end
            for (start, end) in intervals:
                # No overlap between a gap and a projected busy span.
                assert gap.end <= start or gap.start >= end

        # Any placement that fits leaves invariant 1 intact.
        for gap in gaps:
            if not gap.fits(earliest, duration):
                continue
            placed = gap.placement(earliest)
            access = LockAccess(routine_id=99, device_id=0,
                                planned_start=placed, duration=duration)
            lineage.insert(gap.index, access)
            assert lineage.planned_overlaps() == []
            lineage.remove(99)

    @settings(max_examples=100, deadline=None)
    @given(lineage=scheduled_lineage(), now=st.floats(0, 20))
    def test_gap_indexes_monotone(self, lineage, now):
        gaps = lineage.gaps(now)
        indexes = [gap.index for gap in gaps]
        assert indexes == sorted(indexes)
        assert all(0 <= i <= len(lineage.entries) for i in indexes)


@st.composite
def contiguous_routine(draw):
    n_groups = draw(st.integers(1, 5))
    commands = []
    for device_id in range(n_groups):
        for _ in range(draw(st.integers(1, 3))):
            commands.append(Command(
                device_id=device_id,
                value=draw(st.sampled_from(["ON", "OFF"])),
                duration=draw(st.floats(0, 10))))
    return Routine(name="r", commands=commands)


class TestLockRequestPartition:
    @settings(max_examples=100, deadline=None)
    @given(routine=contiguous_routine())
    def test_requests_cover_all_commands_exactly_once(self, routine):
        requests = routine.lock_requests()
        covered = [index for request in requests
                   for index in request.command_indexes]
        assert sorted(covered) == list(range(len(routine.commands)))

    @settings(max_examples=100, deadline=None)
    @given(routine=contiguous_routine())
    def test_requests_back_to_back_and_total_duration(self, routine):
        requests = routine.lock_requests()
        for prev, nxt in zip(requests, requests[1:]):
            assert nxt.offset >= prev.offset + prev.duration - 1e-9
        total = sum(request.duration for request in requests)
        assert total <= routine.total_duration + 1e-9


class TestStatsProperties:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1,
                           max_size=50),
           q1=st.floats(0, 100), q2=st.floats(0, 100))
    def test_percentile_monotone_and_bounded(self, values, q1, q2):
        low, high = sorted([q1, q2])
        assert percentile(values, low) <= percentile(values, high) + 1e-9
        assert min(values) <= percentile(values, q1) <= max(values)

    @settings(max_examples=100, deadline=None)
    @given(order=st.permutations(list(range(6))))
    def test_swap_distance_metric_properties(self, order):
        reference = list(range(6))
        distance = swap_distance(order, reference)
        assert distance == swap_distance(reference, order)
        assert distance == 0 or order != reference
        assert 0 <= normalized_swap_distance(order, reference) <= 1

    @settings(max_examples=50, deadline=None)
    @given(order=st.permutations(list(range(5))))
    def test_swap_distance_identity(self, order):
        assert swap_distance(order, order) == 0


@st.composite
def writes_and_observation(draw):
    n_routines = draw(st.integers(1, 5))
    n_devices = draw(st.integers(1, 3))
    writes = {}
    for rid in range(n_routines):
        devices = draw(st.lists(st.integers(0, n_devices - 1),
                                min_size=1, max_size=n_devices,
                                unique=True))
        writes[rid] = {d: draw(st.sampled_from("ABC")) for d in devices}
    initial = {d: "I" for d in range(n_devices)}
    observed = {d: draw(st.sampled_from(["A", "B", "C", "I"]))
                for d in range(n_devices)}
    return writes, initial, observed


class TestCheckerCrossValidation:
    @settings(max_examples=150, deadline=None)
    @given(data=writes_and_observation())
    def test_brute_force_equals_last_writer_search(self, data):
        writes, initial, observed = data
        brute = serial_end_state_exists(observed, writes, initial,
                                        exhaustive_limit=5)
        clever = serial_end_state_exists(observed, writes, initial,
                                         exhaustive_limit=0)
        assert brute == clever
