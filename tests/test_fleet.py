"""Fleet engine: determinism, isolation, sharding and N=1 equivalence."""

import json

import pytest

from repro.fleet import (FleetConfig, FleetEngine, HomeSpec, SeedSplitter,
                         home_seed, plan_shards, run_fleet, run_home)
from repro.hub.safehome import SafeHome
from repro.metrics.fleet import aggregate_homes
from repro.sim.random import derive_seed, mix64
from repro.workloads.fleet_mix import (DEFAULT_MIX, build_fleet_workload,
                                       scenario_for_home)


# -- seed splitting ------------------------------------------------------------


def test_mix64_is_pure_and_spreads():
    assert mix64(1) == mix64(1)
    outputs = {mix64(i) for i in range(1000)}
    assert len(outputs) == 1000  # no collisions on small consecutive keys


def test_derive_seed_stable_for_str_and_int():
    assert derive_seed(42, "home-3") == derive_seed(42, "home-3")
    assert derive_seed(42, 3) == derive_seed(42, 3)
    assert derive_seed(42, "home-3") != derive_seed(43, "home-3")


def test_home_seeds_pure_and_distinct():
    splitter = SeedSplitter(master_seed=42)
    seeds = [splitter.for_home(i) for i in range(500)]
    assert seeds == [home_seed(42, i) for i in range(500)]
    assert len(set(seeds)) == 500
    # Adjacent homes are not linearly related (SplitMix64, not offsets).
    deltas = {b - a for a, b in zip(seeds, seeds[1:])}
    assert len(deltas) > 450


# -- sharding ------------------------------------------------------------------


def _specs(n):
    return [HomeSpec(home_id=i, scenario="cooling", seed=home_seed(0, i))
            for i in range(n)]


def test_plan_shards_round_robin_covers_all_homes():
    shards = plan_shards(_specs(10), 3)
    assert [shard.shard_id for shard in shards] == [0, 1, 2]
    ids = sorted(spec.home_id for shard in shards for spec in shard.specs)
    assert ids == list(range(10))
    assert {len(shard) for shard in shards} == {3, 4}
    assert [spec.home_id for spec in shards[0].specs] == [0, 3, 6, 9]


def test_plan_shards_never_creates_empty_shards():
    shards = plan_shards(_specs(2), 8)
    assert len(shards) == 2
    with pytest.raises(ValueError):
        plan_shards(_specs(2), 0)


# -- scenario mix --------------------------------------------------------------


def test_scenario_mix_cycles_by_home_id():
    names = [scenario_for_home(i) for i in range(6)]
    assert names == list(DEFAULT_MIX) * 2
    assert scenario_for_home(5, "cooling") == "cooling"
    with pytest.raises(ValueError):
        scenario_for_home(0, "nope")
    with pytest.raises(ValueError):
        scenario_for_home(0, "mix", mix=("morning", "nope"))
    with pytest.raises(ValueError):
        build_fleet_workload("nope", seed=0)


def test_fleet_workloads_build_and_are_seed_deterministic():
    for name in ("morning", "factory-line", "cooling", "cooling-faulty"):
        one = build_fleet_workload(name, seed=5)
        two = build_fleet_workload(name, seed=5)
        assert one.device_count() == two.device_count()
        assert [r.name for r, _t in one.arrivals] == \
            [r.name for r, _t in two.arrivals]
        assert [t for _r, t in one.arrivals] == [t for _r, t in two.arrivals]
    faulty = build_fleet_workload("cooling-faulty", seed=5)
    assert faulty.failure_plans


# -- the determinism contract --------------------------------------------------


def test_same_seed_gives_byte_identical_aggregate_json():
    one = run_fleet(6, seed=42)
    two = run_fleet(6, seed=42)
    assert one.to_json(per_home=True) == two.to_json(per_home=True)


def test_different_seeds_differ():
    one = run_fleet(4, seed=1, scenario="cooling")
    two = run_fleet(4, seed=2, scenario="cooling")
    assert one.to_json() != two.to_json()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backends_match_serial_bytes(backend):
    serial = run_fleet(6, seed=11)
    pooled = run_fleet(6, seed=11, backend=backend, workers=3)
    assert pooled.to_json(per_home=True) == serial.to_json(per_home=True)


def test_worker_count_does_not_change_output():
    one = run_fleet(5, seed=3, scenario="cooling", workers=1)
    five = run_fleet(5, seed=3, scenario="cooling", workers=5,
                     backend="thread")
    assert one.to_json(per_home=True) == five.to_json(per_home=True)


# -- N=1 fleet ≡ single SafeHome run ------------------------------------------


def test_fleet_of_one_equals_standalone_safehome_run():
    result = run_fleet(1, seed=42, scenario="morning")
    row = result.rows[0]

    seed = home_seed(42, 0)
    home = SafeHome(visibility="ev", scheduler="timeline", seed=seed)
    home.load_workload(build_fleet_workload("morning", seed=seed))
    run_result = home.run(max_events=5_000_000)
    report = home.report(check_final=True, exhaustive_limit=7)

    assert row["seed"] == seed
    assert row["routines"] == report.routines
    assert row["committed"] == report.committed
    assert row["aborted"] == report.aborted
    assert row["latencies"] == run_result.latencies()
    assert row["lat_p50"] == report.latency["p50"]
    assert row["final_congruent"] == report.final_congruent
    assert row["makespan"] == run_result.makespan


# -- shard-failure isolation ---------------------------------------------------


def test_one_homes_failure_never_perturbs_its_neighbours():
    healthy = run_fleet(5, seed=9, scenario="cooling")
    faulty_spec = HomeSpec(home_id=2, scenario="cooling-faulty",
                           seed=home_seed(9, 2))
    mixed_rows = [run_home(spec) if spec.home_id != 2
                  else run_home(faulty_spec)
                  for spec in FleetEngine(
                      FleetConfig(homes=5, seed=9,
                                  scenario="cooling")).specs()]

    faulty_row = mixed_rows[2]
    assert faulty_row["aborted"] > 0 or \
        faulty_row["makespan"] != healthy.rows[2]["makespan"]
    for home_id in (0, 1, 3, 4):
        assert mixed_rows[home_id] == healthy.rows[home_id]


# -- aggregation ---------------------------------------------------------------


def test_aggregate_percentiles_ordered_and_rates_bounded():
    aggregate = run_fleet(6, seed=4).aggregate
    latency = aggregate["latency"]
    assert latency["p50"] <= latency["p95"] <= latency["p99"] \
        <= latency["max"]
    assert 0.0 <= aggregate["abort_rate"] <= 1.0
    assert aggregate["homes"] == 6
    assert aggregate["routines"] == aggregate["committed"] \
        + aggregate["aborted"]
    assert aggregate["homes_final_checked"] == 6
    assert aggregate["final_incongruence"] == 0.0


def test_aggregate_is_insensitive_to_row_order():
    rows = run_fleet(4, seed=8, scenario="cooling").rows
    assert aggregate_homes(rows) == aggregate_homes(list(reversed(rows)))


def test_aggregate_handles_unchecked_final_state():
    result = run_fleet(3, seed=2, scenario="cooling", check_final=False)
    assert result.aggregate["final_incongruence"] is None
    assert result.aggregate["homes_final_checked"] == 0


# -- engine validation ---------------------------------------------------------


def test_engine_rejects_bad_config():
    with pytest.raises(ValueError):
        FleetEngine(FleetConfig(homes=0))
    with pytest.raises(ValueError):
        FleetEngine(FleetConfig(homes=1, backend="quantum"))
    with pytest.raises(ValueError):
        FleetEngine(FleetConfig(homes=1, scenario="nope"))


# -- CLI -----------------------------------------------------------------------


def test_cli_fleet_deterministic_json(tmp_path, capsys):
    from repro.cli import main

    path_one = tmp_path / "one.json"
    path_two = tmp_path / "two.json"
    argv = ["fleet", "--homes", "4", "--seed", "42",
            "--scenario", "cooling", "--per-home"]
    assert main(argv + ["--json", str(path_one)]) == 0
    out_one = capsys.readouterr().out
    assert main(argv + ["--json", str(path_two)]) == 0
    out_two = capsys.readouterr().out

    assert out_one == out_two
    assert path_one.read_bytes() == path_two.read_bytes()
    assert path_one.read_text() == out_one
    payload = json.loads(out_one)
    assert payload["aggregate"]["homes"] == 4
    assert len(payload["homes"]) == 4
    assert "latencies" not in payload["homes"][0]


def test_cli_fleet_rejects_unknown_scenario(capsys):
    from repro.cli import main

    assert main(["fleet", "--homes", "2", "--scenario", "nope"]) == 2
    assert "unknown" in capsys.readouterr().err


# -- chunked streaming execution (PR 5) ----------------------------------------


class TestChunkedShardingDeterminism:
    """Default (exact) fleet JSON bytes are invariant across the whole
    backend × workers × chunk grid."""

    HOMES = 8

    def reference(self):
        return run_fleet(self.HOMES, seed=13,
                         scenario="cooling").to_json(per_home=True)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk", [1, 7, HOMES])
    def test_grid_matches_reference_bytes(self, backend, workers, chunk):
        result = run_fleet(self.HOMES, seed=13, scenario="cooling",
                           backend=backend, workers=workers, chunk=chunk)
        assert result.to_json(per_home=True) == self.reference()

    def test_chunk_plan_covers_all_homes_contiguously(self):
        from repro.fleet import plan_chunks

        tasks = [(i, "cooling", i * 11) for i in range(10)]
        chunks = plan_chunks(tasks, 3)
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
        assert [task for chunk in chunks for task in chunk] == tasks
        with pytest.raises(ValueError):
            plan_chunks(tasks, 0)

    def test_default_chunk_is_homes_over_workers(self):
        from repro.fleet import FleetConfig, default_chunk_size

        assert default_chunk_size(100, 4) == 25
        assert default_chunk_size(10, 3) == 4
        assert default_chunk_size(1, 8) == 1
        config = FleetConfig(homes=100, workers=4, chunk=0)
        assert config.effective_chunk() == 25
        assert FleetConfig(homes=100, workers=4,
                           chunk=7).effective_chunk() == 7

    def test_engine_rejects_bad_aggregate_mode(self):
        with pytest.raises(ValueError):
            FleetEngine(FleetConfig(homes=1, aggregate="approximate"))


class TestStreamingAggregation:
    """Mergeable accumulator mode: pre-reduced chunks, merged partials."""

    def test_stream_counts_match_exact_and_percentiles_are_close(self):
        exact = run_fleet(6, seed=4)
        stream = run_fleet(6, seed=4, aggregate="stream", chunk=2)
        e, s = exact.aggregate, stream.aggregate
        for key in ("homes", "routines", "committed", "aborted",
                    "abort_rate", "homes_final_checked",
                    "final_incongruence", "makespan_max"):
            assert s[key] == e[key], key
        # Means fold partial float sums in chunk order: equal up to
        # addition-order ulps.
        for key in ("temporary_incongruence_mean", "makespan_mean"):
            assert s[key] == pytest.approx(e[key], rel=1e-12), key
        assert s["latency"]["n"] == e["latency"]["n"]
        assert s["latency"]["mean"] == pytest.approx(e["latency"]["mean"])
        assert s["latency"]["max"] == e["latency"]["max"]
        # Histogram percentiles are nearest-rank at 1 ms resolution:
        # within one bin of the exact nearest-rank pooled sample.
        pooled = sorted(sample for row in exact.rows
                        for sample in row["latencies"])
        n = len(pooled)
        for q in (50, 95, 99):
            nearest = pooled[int((n - 1) * q / 100.0)]
            assert abs(s["latency"][f"p{q}"] - nearest) <= 1e-3 + 1e-9

    def test_stream_rows_ship_without_raw_samples(self):
        stream = run_fleet(4, seed=7, scenario="cooling",
                           aggregate="stream")
        assert all("latencies" not in row for row in stream.rows)

    def test_stream_json_deterministic_across_backends_at_fixed_chunk(self):
        kwargs = dict(seed=4, aggregate="stream", chunk=2)
        one = run_fleet(6, **kwargs)
        two = run_fleet(6, backend="thread", workers=3, **kwargs)
        three = run_fleet(6, backend="process", workers=2, **kwargs)
        assert one.to_json() == two.to_json() == three.to_json()
        # The layout knobs are stamped into the payload.
        payload = json.loads(one.to_json())
        assert payload["fleet"]["aggregate"] == "stream"
        assert payload["fleet"]["chunk"] == 2

    def test_accumulator_merge_equals_single_fold(self):
        from repro.metrics.fleet import (FleetAccumulator,
                                         accumulate_rows,
                                         merge_accumulators)

        rows = run_fleet(6, seed=9, scenario="cooling").rows
        whole = accumulate_rows(rows)
        parts = merge_accumulators(
            [accumulate_rows(rows[:2]), accumulate_rows(rows[2:5]),
             accumulate_rows(rows[5:]), None])
        split_agg, whole_agg = parts.aggregate(), whole.aggregate()
        # Histogram counts merge exactly; float sums differ only by
        # addition-order ulps.
        for agg in (split_agg, whole_agg):
            agg["latency"]["mean"] = round(agg["latency"]["mean"], 9)
            agg["makespan_mean"] = round(agg["makespan_mean"], 9)
            agg["temporary_incongruence_mean"] = round(
                agg["temporary_incongruence_mean"], 9)
        assert split_agg == whole_agg
        empty = FleetAccumulator()
        agg = empty.aggregate()
        assert agg["homes"] == 0 and agg["latency"]["n"] == 0
        assert agg["final_incongruence"] is None


class TestHomeFactoryResetEquivalence:
    """reset() + reuse must be byte-equivalent to a fresh SafeHome."""

    @pytest.mark.parametrize("model", ["wv", "gsv", "psv", "ev", "occ"])
    def test_reset_vs_fresh_rows_identical_per_model(self, model):
        from repro.fleet import HomeFactory, HomeSpec, WorkerContext

        context = WorkerContext(model=model)
        factory = HomeFactory(context)
        # Warm the factory on two different homes first so the third
        # row comes from a twice-reset, reused stack.
        for home_id in (0, 1):
            factory.run_task((home_id, "cooling", home_seed(5, home_id)))
        reused_row = factory.run_task((2, "morning", home_seed(5, 2)))

        fresh_row = run_home(HomeSpec(
            home_id=2, scenario="morning", seed=home_seed(5, 2),
            model=model))
        assert reused_row == fresh_row

    def test_reset_vs_fresh_with_durability_and_crashes(self):
        from repro.fleet import HomeFactory, HomeSpec, WorkerContext

        context = WorkerContext(model="ev", crashes=2)
        factory = HomeFactory(context)
        factory.run_task((0, "cooling", home_seed(2, 0)))
        reused_row = factory.run_task((1, "morning", home_seed(2, 1)))
        fresh_row = run_home(HomeSpec(
            home_id=1, scenario="morning", seed=home_seed(2, 1),
            model="ev", crashes=2))
        assert reused_row == fresh_row
        assert reused_row["hub_crashes"] >= 1

    def test_reset_restores_constructor_semantics(self):
        home = SafeHome(visibility="ev", seed=1)
        home.add_device("light", "lamp")
        home.register_routine_spec({
            "routineName": "on",
            "commands": [{"device": "lamp", "action": "ON",
                          "durationSec": 1}]})
        home.invoke("on")
        home.run()
        home.reset(seed=2)
        assert home.sim.now == 0.0
        assert home.sim.events_processed == 0
        assert len(home.registry) == 0
        assert home.streams.seed == 2
        assert home.controller.runs == []
        assert home.durability is None and not home.crashed

    def test_stream_requires_a_pool_backend(self):
        from repro.fleet import register_backend

        register_backend("legacy-test", lambda shards, workers: [])
        try:
            with pytest.raises(ValueError, match="pool backend"):
                FleetEngine(FleetConfig(homes=2, backend="legacy-test",
                                        aggregate="stream"))
        finally:
            from repro.fleet.engine import BACKENDS
            BACKENDS.pop("legacy-test", None)


class TestServedHomeRecycling:
    """Long-lived homes: late failure plans and tenant-to-tenant reuse.

    A served home's clock keeps running between phases, so failure
    plans can be scripted after their nominal time has passed, and a
    recycled home must carry nothing — timers, armed plans, streams —
    from its previous tenant.
    """

    @staticmethod
    def _home_with_lamp(seed=0):
        home = SafeHome(visibility="ev", seed=seed)
        home.add_device("light", "lamp")
        home.register_routine_spec({
            "routineName": "on",
            "commands": [{"device": "lamp", "action": "ON",
                          "durationSec": 1}]})
        return home

    def test_arm_clamps_past_failure_to_now(self):
        home = self._home_with_lamp()
        home.invoke("on")
        home.run(until=5.0)
        assert home.sim.now == 5.0
        # Scripted "in the past" relative to the advanced clock: the
        # device must be down immediately, not raise SimulationError.
        home.plan_failure("lamp", fail_at=2.0, restart_at=3.0)
        home.invoke("on", at=6.0)
        result = home.run()
        assert result is not None
        device = home.registry.by_name("lamp")
        assert not device.failed  # restart fired too (clamped to now)

    def test_arm_clamp_preserves_fail_before_restart(self):
        home = self._home_with_lamp()
        home.run(until=10.0)
        home.plan_failure("lamp", fail_at=1.0, restart_at=4.0)
        fired = []
        device = home.registry.by_name("lamp")
        original_fail, original_restart = device.fail, device.restart
        # Wrap before arm(): the injector captures the bound methods
        # when it schedules the clamped events.
        device.fail = lambda: (fired.append("fail"), original_fail())[1]
        device.restart = lambda: (fired.append("restart"),
                                  original_restart())[1]
        home.injector.arm()
        home.sim.run()
        assert fired == ["fail", "restart"]
        assert not device.failed

    def test_arm_clamp_is_identity_for_future_plans(self):
        def final_state(clamped_first):
            home = self._home_with_lamp(seed=3)
            if clamped_first:
                home.run(until=0.0)   # arm once with nothing scripted
            home.plan_failure("lamp", fail_at=2.0, restart_at=8.0)
            home.invoke("on", at=1.0)
            home.invoke("on", at=9.0)
            result = home.run()
            return [(run.routine.name, run.status.name,
                     round(run.finish_time, 6)) for run in result.runs]

        assert final_state(False) == final_state(True)

    def test_reset_clears_timers_and_armed_plans_between_tenants(self):
        home = self._home_with_lamp(seed=1)
        home.plan_failure("lamp", fail_at=50.0, restart_at=60.0)
        home.invoke("on")
        home.run(until=2.0)           # failure timers still pending
        assert home.sim.pending_events > 0
        assert home.injector._armed == 1

        home.reset(seed=2)
        # Nothing survives into the next tenant's occupancy: no stale
        # timers, no plans, no armed count, clock back at zero.
        assert home.sim.pending_events == 0
        assert home.sim.next_event_time() is None
        assert home.injector.plans == []
        assert home.injector._armed == 0
        assert home.sim.now == 0.0

        # And the recycled home behaves exactly like a fresh one.
        home.add_device("light", "lamp")
        home.register_routine_spec({
            "routineName": "on",
            "commands": [{"device": "lamp", "action": "ON",
                          "durationSec": 1}]})
        home.invoke("on")
        recycled = home.run()

        fresh = self._home_with_lamp(seed=2)
        fresh.invoke("on")
        baseline = fresh.run()
        assert [(r.routine.name, r.status.name, r.finish_time)
                for r in recycled.runs] == \
            [(r.routine.name, r.status.name, r.finish_time)
             for r in baseline.runs]
        # The old tenant's failure never fires on the recycled home.
        home.run(until=100.0)
        assert not home.registry.by_name("lamp").failed
