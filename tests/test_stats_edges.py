"""Merge edge cases for the streaming fleet-aggregation primitives:
:class:`FixedResolutionHistogram` and :class:`FleetAccumulator`."""

import pytest

from repro.metrics.fleet import FleetAccumulator, merge_accumulators
from repro.metrics.stats import FixedResolutionHistogram


def _row(routines=2, committed=2, aborted=0, latencies=(0.5, 1.5),
         makespan=3.0, temporary_incongruence=0.0,
         final_congruent=None):
    return {
        "routines": routines, "committed": committed,
        "aborted": aborted, "latencies": list(latencies),
        "makespan": makespan,
        "temporary_incongruence": temporary_incongruence,
        "final_congruent": final_congruent,
    }


class TestHistogramMerge:
    def test_merge_empty_into_empty(self):
        left, right = (FixedResolutionHistogram(0.1),
                       FixedResolutionHistogram(0.1))
        left.merge(right)
        assert left.count == 0
        assert left.bins == {}
        assert left.quantile(50) == 0.0     # empty → 0.0, not a crash

    def test_merge_empty_is_identity(self):
        left = FixedResolutionHistogram(0.1)
        left.extend([0.05, 0.15, 0.95])
        before = (dict(left.bins), left.count)
        left.merge(FixedResolutionHistogram(0.1))
        assert (left.bins, left.count) == before

    def test_merge_single_bin_partials(self):
        left, right = (FixedResolutionHistogram(1.0),
                       FixedResolutionHistogram(1.0))
        left.add(0.2)
        right.add(0.7)          # same bin 0 in both partials
        left.merge(right)
        assert left.bins == {0: 2}
        assert left.count == 2
        for q in (0, 50, 100):
            assert left.quantile(q) == 0.0      # lower bin edge

    def test_merge_saturating_tail_bin(self):
        """A heavy tail bin absorbs counts from both sides exactly."""
        left, right = (FixedResolutionHistogram(1.0),
                       FixedResolutionHistogram(1.0))
        left.extend([0.1] * 10 + [99.5] * 90)
        right.extend([99.9] * 100)
        left.merge(right)
        assert left.bins == {0: 10, 99: 190}
        assert left.count == 200
        assert left.quantile(50) == 99.0
        assert left.quantile(100) == 99.0

    def test_nearest_rank_tie_is_lower_bin_edge(self):
        """Nearest-rank on an even count picks the lower sample's bin
        (rank floor), and the answer is the bin's lower edge."""
        histogram = FixedResolutionHistogram(1.0)
        histogram.extend([1.5, 2.5])        # bins 1 and 2, count 2
        # rank = int((2-1) * 50/100) = 0 → first sample's bin edge;
        # the rank floors, so anything short of 100 stays there too.
        assert histogram.quantile(50) == 1.0
        assert histogram.quantile(99) == 1.0
        assert histogram.quantile(100) == 2.0
        histogram.add(2.6)                  # tie: bin 2 now holds 2
        assert histogram.quantile(50) == 2.0

    def test_merge_order_is_irrelevant(self):
        partials = []
        for values in ([0.1, 0.9], [2.5], [], [0.4, 7.7, 7.9]):
            histogram = FixedResolutionHistogram(0.5)
            histogram.extend(values)
            partials.append(histogram)
        forward = FixedResolutionHistogram(0.5)
        backward = FixedResolutionHistogram(0.5)
        for histogram in partials:
            forward.merge(histogram)
        for histogram in reversed(partials):
            backward.merge(histogram)
        assert forward.bins == backward.bins
        assert forward.count == backward.count

    def test_merge_resolution_mismatch_raises(self):
        with pytest.raises(ValueError, match="resolution"):
            FixedResolutionHistogram(0.1).merge(
                FixedResolutionHistogram(0.2))

    def test_bad_construction_and_quantile_args(self):
        with pytest.raises(ValueError):
            FixedResolutionHistogram(0.0)
        with pytest.raises(ValueError):
            FixedResolutionHistogram(1.0).quantile(101)


class TestFleetAccumulatorMerge:
    def test_merge_zero_count_partial_is_identity(self):
        """An empty partial (a worker that got no homes) must not
        disturb min/max-style fields — lat_max and makespan_max start
        at 0.0 and merging a zero-count partial keeps the real peaks."""
        acc = FleetAccumulator()
        acc.add_row(_row(latencies=(0.25, 4.0), makespan=7.5))
        before = acc.aggregate()
        acc.merge(FleetAccumulator())
        after = acc.aggregate()
        assert after == before
        assert after["latency"]["max"] == 4.0
        assert after["makespan_max"] == 7.5

    def test_merge_into_zero_count_accumulator(self):
        partial = FleetAccumulator()
        partial.add_row(_row(aborted=1, committed=1,
                             final_congruent=True))
        merged = FleetAccumulator().merge(partial)
        aggregate = merged.aggregate()
        assert aggregate["homes"] == 1
        assert aggregate["abort_rate"] == 0.5
        assert aggregate["final_incongruence"] == 0.0

    def test_zero_count_aggregate_has_neutral_identities(self):
        aggregate = FleetAccumulator().aggregate()
        assert aggregate["homes"] == 0
        assert aggregate["abort_rate"] == 0.0
        assert aggregate["latency"]["mean"] == 0.0
        assert aggregate["latency"]["max"] == 0.0
        assert aggregate["makespan_max"] == 0.0
        assert aggregate["final_incongruence"] is None

    def test_merge_accumulators_skips_missing_partials(self):
        partial = FleetAccumulator()
        partial.add_row(_row())
        merged = merge_accumulators([None, partial, None])
        assert merged.aggregate()["homes"] == 1

    def test_row_without_latencies_keeps_peaks(self):
        acc = FleetAccumulator()
        acc.add_row(_row(latencies=(2.0,), makespan=9.0))
        acc.add_row(_row(latencies=(), makespan=1.0))
        aggregate = acc.aggregate()
        assert aggregate["latency"]["max"] == 2.0
        assert aggregate["latency"]["n"] == 1
        assert aggregate["makespan_max"] == 9.0
