"""Shim for editable installs on environments without `wheel`.

All metadata lives in pyproject.toml. `pip install -e .` is the normal
path; on offline machines missing the `wheel` package, plain
`python setup.py develop` still works through this shim.
"""

from setuptools import setup

setup()
